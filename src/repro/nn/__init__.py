"""Neural-network substrate.

Two halves live here:

* :mod:`repro.nn.spec` and :mod:`repro.nn.model_zoo` -- *architecture
  specifications* (per-layer parameter shapes and FLOP counts) for every
  network in the paper's Table 3.  These drive the throughput simulator and
  Poseidon's cost model; they do not hold any weights.
* :mod:`repro.nn.layers`, :mod:`repro.nn.network`, :mod:`repro.nn.loss`,
  :mod:`repro.nn.optim` -- a runnable numpy implementation (forward,
  backward, SGD) used by the functional distributed trainer and the
  convergence experiments.
"""

from repro.nn.spec import (
    LayerKind,
    LayerSpec,
    ModelSpec,
    SpecBuilder,
)
from repro.nn.network import Network
from repro.nn.loss import SoftmaxCrossEntropyLoss
from repro.nn.optim import SGD

__all__ = [
    "LayerKind",
    "LayerSpec",
    "ModelSpec",
    "SpecBuilder",
    "Network",
    "SoftmaxCrossEntropyLoss",
    "SGD",
]
