"""Optimisers.

Only plain SGD (with optional momentum and weight decay) is provided -- the
same update rule used throughout the paper's evaluation (Eq. 1/2).  The
optimiser can apply updates either to a :class:`~repro.nn.network.Network`
directly (single-node training) or to a bare dictionary of parameter arrays
(the form the parameter server holds).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.network import Network


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be >= 0, got {weight_decay}")
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[str, np.ndarray] = {}

    def step_network(self, network: Network) -> None:
        """Apply each layer's stored gradients to its parameters in place."""
        for _, layer in network.parameter_layers():
            for key, param in layer.params.items():
                grad = layer.grads[key]
                self.apply(f"{layer.name}/{key}", param, grad)

    def apply(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Apply one gradient to one parameter array in place.

        Args:
            key: unique name for the parameter (used to track momentum state).
            param: parameter array, modified in place.
            grad: gradient of the loss with respect to ``param``.
        """
        if param.shape != grad.shape:
            raise ConfigurationError(
                f"parameter {key!r}: shape mismatch {param.shape} vs {grad.shape}"
            )
        update = grad
        if self.weight_decay:
            update = update + self.weight_decay * param
        if self.momentum:
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(param)
            velocity = self.momentum * velocity - self.learning_rate * update
            self._velocity[key] = velocity
            param += velocity
        else:
            param -= self.learning_rate * update

    def reset(self) -> None:
        """Drop all accumulated momentum state."""
        self._velocity.clear()

    def get_state(self) -> Dict[str, np.ndarray]:
        """Deep copy of the momentum state (for checkpointing)."""
        return {key: velocity.copy() for key, velocity in self._velocity.items()}

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore momentum state from a :meth:`get_state` snapshot."""
        self._velocity = {key: np.array(velocity, copy=True)
                          for key, velocity in state.items()}
