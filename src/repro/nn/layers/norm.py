"""Layer normalisation over the last (channel) axis.

Unlike batch norm, layer norm carries no running statistics: every forward
pass normalises each token independently, so the layer is deterministic and
identical between training and inference -- a property the bit-reproducibility
suite relies on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer


class LayerNorm(Layer):
    """Normalise the last axis to zero mean / unit variance, then scale+shift.

    Accepts any input of shape ``(..., C)``; the affine parameters ``gain``
    and ``bias`` are per-channel vectors of length ``C``.
    """

    def __init__(self, name: str, dim: int, epsilon: float = 1e-5):
        super().__init__(name)
        self.dim = int(dim)
        self.epsilon = float(epsilon)
        self.params = {
            "gain": np.ones((self.dim,), dtype=np.float32),
            "bias": np.zeros((self.dim,), dtype=np.float32),
        }
        self.zero_grads()
        self._normalized: Optional[np.ndarray] = None
        self._inv_std: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim < 2 or inputs.shape[-1] != self.dim:
            raise ShapeError(
                f"layer {self.name!r}: expected shape (..., {self.dim}), "
                f"got {inputs.shape}"
            )
        mean = inputs.mean(axis=-1, keepdims=True)
        var = inputs.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        normalized = (inputs - mean) * inv_std
        if training:
            self._normalized = normalized
            self._inv_std = inv_std
        return normalized * self.params["gain"] + self.params["bias"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._normalized is None or self._inv_std is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        normalized = self._normalized
        reduce_axes = tuple(range(grad_output.ndim - 1))
        self.grads["gain"] = (grad_output * normalized).sum(
            axis=reduce_axes).astype(np.float32)
        self.grads["bias"] = grad_output.sum(axis=reduce_axes).astype(np.float32)
        grad_normalized = grad_output * self.params["gain"]
        mean_grad = grad_normalized.mean(axis=-1, keepdims=True)
        mean_grad_norm = (grad_normalized * normalized).mean(axis=-1, keepdims=True)
        return self._inv_std * (
            grad_normalized - mean_grad - normalized * mean_grad_norm)


__all__ = ["LayerNorm"]
