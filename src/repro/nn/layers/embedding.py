"""Token and learned positional embedding layers.

Embedding tables are the first transformer layer whose gradient is *sparse*:
only the rows of tokens present in the batch receive updates, which the
backward pass realises with a scatter-add.  The distributed runtime still
syncs the table as a dense blob (the PS path), matching how data-parallel
frameworks ship embedding gradients when no sparse-push path exists.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.initializers import xavier_uniform
from repro.nn.layers.base import Layer


class Embedding(Layer):
    """Token-id lookup table mapping ``(B, T)`` int ids to ``(B, T, C)``.

    Args:
        name: layer name.
        num_embeddings: vocabulary size (number of table rows).
        dim: embedding width ``C``.
        rng: numpy generator for the table initialisation.
    """

    def __init__(self, name: str, num_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = int(num_embeddings)
        self.dim = int(dim)
        self.params = {
            "weight": xavier_uniform(
                (self.num_embeddings, self.dim),
                fan_in=self.num_embeddings,
                fan_out=self.dim,
                rng=rng,
            ),
        }
        self.zero_grads()
        self._indices: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 2, "token-id input")
        if not np.issubdtype(inputs.dtype, np.integer):
            raise ShapeError(
                f"layer {self.name!r}: expected integer token ids, got dtype "
                f"{inputs.dtype}"
            )
        if inputs.size and (inputs.min() < 0 or inputs.max() >= self.num_embeddings):
            raise ShapeError(
                f"layer {self.name!r}: token ids must lie in "
                f"[0, {self.num_embeddings}), got range "
                f"[{inputs.min()}, {inputs.max()}]"
            )
        self._indices = inputs if training else None
        return self.params["weight"][inputs]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._indices is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        self._check_input(grad_output, 3, "gradient")
        grad_weight = np.zeros_like(self.params["weight"])
        np.add.at(grad_weight, self._indices.reshape(-1),
                  grad_output.reshape(-1, self.dim))
        self.grads["weight"] = grad_weight
        # Token ids are discrete; there is no gradient to propagate upstream.
        return np.zeros(self._indices.shape, dtype=grad_output.dtype)


class PositionalEmbedding(Layer):
    """Learned per-position offsets added to a ``(B, T, C)`` activation.

    The table covers ``max_len`` positions; batches may use any prefix
    ``T <= max_len`` (rows beyond ``T`` simply receive zero gradient).
    """

    def __init__(self, name: str, max_len: int, dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.max_len = int(max_len)
        self.dim = int(dim)
        self.params = {
            "weight": (0.02 * rng.standard_normal(
                (self.max_len, self.dim))).astype(np.float32),
        }
        self.zero_grads()
        self._seq_len: Optional[int] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 3)
        seq_len = inputs.shape[1]
        if inputs.shape[2] != self.dim or seq_len > self.max_len:
            raise ShapeError(
                f"layer {self.name!r}: expected (B, T<={self.max_len}, "
                f"{self.dim}), got shape {inputs.shape}"
            )
        self._seq_len = seq_len if training else None
        return inputs + self.params["weight"][:seq_len]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._seq_len is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        self._check_input(grad_output, 3, "gradient")
        grad_weight = np.zeros_like(self.params["weight"])
        grad_weight[:self._seq_len] = grad_output.sum(axis=0)
        self.grads["weight"] = grad_weight
        return grad_output


__all__ = ["Embedding", "PositionalEmbedding"]
