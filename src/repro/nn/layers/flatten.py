"""Flatten layer bridging convolutional and fully-connected stacks."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Reshape ``(B, C, H, W)`` activations into ``(B, C*H*W)`` vectors."""

    def __init__(self, name: str):
        super().__init__(name)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        return grad_output.reshape(self._input_shape)
