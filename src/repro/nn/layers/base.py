"""Base class for runnable layers.

Layers follow the classic define-by-layer style of Caffe: each layer owns its
parameters and gradients in plain dictionaries keyed by parameter name, so
that the distributed runtime can read gradients out of a layer as soon as its
backward pass finishes (the hook wait-free backpropagation relies on).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import ShapeError


class Layer:
    """Abstract layer with explicit parameter/gradient storage.

    Subclasses implement :meth:`forward` and :meth:`backward` and populate
    ``self.params`` / ``self.grads`` with identically keyed numpy arrays.
    """

    def __init__(self, name: str):
        self.name = name
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    # -- interface -------------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute the layer output for a batch of inputs."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output``; returns gradient w.r.t. the input.

        Parameter gradients are written into ``self.grads``.
        """
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------------
    @property
    def has_parameters(self) -> bool:
        """Whether this layer carries trainable parameters."""
        return bool(self.params)

    @property
    def param_count(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def zero_grads(self) -> None:
        """Reset all parameter gradients to zero."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def set_params(self, new_params: Dict[str, np.ndarray]) -> None:
        """Overwrite parameters in place (used when pulling from a PS).

        Raises:
            ShapeError: if a replacement does not match the existing shape.
            KeyError: if an unknown parameter name is supplied.
        """
        for key, value in new_params.items():
            if key not in self.params:
                raise KeyError(f"layer {self.name!r} has no parameter {key!r}")
            if value.shape != self.params[key].shape:
                raise ShapeError(
                    f"layer {self.name!r} parameter {key!r}: expected shape "
                    f"{self.params[key].shape}, got {value.shape}"
                )
            np.copyto(self.params[key], value)

    def get_params(self) -> Dict[str, np.ndarray]:
        """Return a copy of the parameter dictionary."""
        return {key: value.copy() for key, value in self.params.items()}

    def get_grads(self) -> Dict[str, np.ndarray]:
        """Return a copy of the gradient dictionary."""
        return {key: value.copy() for key, value in self.grads.items()}

    def _check_input(self, inputs: np.ndarray, expected_ndim: int,
                     what: Optional[str] = None) -> None:
        if inputs.ndim != expected_ndim:
            raise ShapeError(
                f"layer {self.name!r} expected a {expected_ndim}-D "
                f"{what or 'input'}, got shape {inputs.shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, params={self.param_count})"
