"""Runnable numpy layers used by the functional distributed trainer."""

from repro.nn.layers.base import Layer
from repro.nn.layers.dense import Dense
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.pooling import MaxPool2D, AvgPool2D
from repro.nn.layers.activation import ReLU
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.dropout import Dropout

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "ReLU",
    "Flatten",
    "Dropout",
]
