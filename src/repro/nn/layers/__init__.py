"""Runnable numpy layers used by the functional distributed trainer."""

from repro.nn.layers.base import Layer
from repro.nn.layers.dense import Dense
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.pooling import MaxPool2D, AvgPool2D
from repro.nn.layers.activation import GELU, ReLU
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import Embedding, PositionalEmbedding
from repro.nn.layers.norm import LayerNorm
from repro.nn.layers.attention import (
    MultiHeadAttention,
    SequenceMeanPool,
    TokenFlatten,
    TransformerBlock,
)

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "ReLU",
    "GELU",
    "Flatten",
    "Dropout",
    "Embedding",
    "PositionalEmbedding",
    "LayerNorm",
    "MultiHeadAttention",
    "TransformerBlock",
    "TokenFlatten",
    "SequenceMeanPool",
]
