"""Max and average pooling layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import im2col


class MaxPool2D(Layer):
    """Max pooling over square windows."""

    def __init__(self, name: str, kernel: int, stride: Optional[int] = None, pad: int = 0):
        super().__init__(name)
        self.kernel = int(kernel)
        self.stride = int(stride) if stride is not None else int(kernel)
        self.pad = int(pad)
        self._cache = None
        # Scatter buffer reused across training iterations (same input shape
        # -> zero allocation per backward), mirroring Conv2D's column buffers.
        self._grad_col_buffer: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 4)
        batch, channels, height, width = inputs.shape
        cols, out_h, out_w = im2col(inputs, self.kernel, self.stride, self.pad)
        cols = cols.reshape(batch * out_h * out_w, channels, self.kernel * self.kernel)
        arg_max = cols.argmax(axis=2)
        out = np.take_along_axis(cols, arg_max[:, :, None], axis=2).squeeze(2)
        out = out.reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)
        if training:
            self._cache = (arg_max, inputs.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        from repro.nn.layers.conv import col2im

        arg_max, input_shape, out_h, out_w = self._cache
        batch, channels, _, _ = input_shape
        grad = grad_output.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, channels)
        shape = (batch * out_h * out_w, channels, self.kernel * self.kernel)
        grad_cols = self._grad_col_buffer
        if (grad_cols is not None and grad_cols.shape == shape
                and grad_cols.dtype == grad_output.dtype):
            grad_cols.fill(0)
        else:
            grad_cols = np.zeros(shape, dtype=grad_output.dtype)
            self._grad_col_buffer = grad_cols
        np.put_along_axis(grad_cols, arg_max[:, :, None], grad[:, :, None], axis=2)
        flat_cols = grad_cols.reshape(batch * out_h * out_w, -1)
        return col2im(flat_cols, input_shape, self.kernel, self.stride, self.pad)


class AvgPool2D(Layer):
    """Average pooling over square windows."""

    def __init__(self, name: str, kernel: int, stride: Optional[int] = None, pad: int = 0):
        super().__init__(name)
        self.kernel = int(kernel)
        self.stride = int(stride) if stride is not None else int(kernel)
        self.pad = int(pad)
        self._cache = None
        # Broadcast buffer reused across training iterations, mirroring
        # Conv2D's column buffers.
        self._grad_col_buffer: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 4)
        batch, channels, height, width = inputs.shape
        cols, out_h, out_w = im2col(inputs, self.kernel, self.stride, self.pad)
        cols = cols.reshape(batch * out_h * out_w, channels, self.kernel * self.kernel)
        out = cols.mean(axis=2)
        out = out.reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)
        if training:
            self._cache = (inputs.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        from repro.nn.layers.conv import col2im

        input_shape, out_h, out_w = self._cache
        batch, channels, _, _ = input_shape
        window = self.kernel * self.kernel
        grad = grad_output.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, channels)
        shape = (batch * out_h * out_w, channels, window)
        grad_cols = self._grad_col_buffer
        if (grad_cols is None or grad_cols.shape != shape
                or grad_cols.dtype != grad_output.dtype):
            grad_cols = np.empty(shape, dtype=grad_output.dtype)
            self._grad_col_buffer = grad_cols
        np.copyto(grad_cols, (grad / window)[:, :, None])
        flat_cols = grad_cols.reshape(batch * out_h * out_w, -1)
        return col2im(flat_cols, input_shape, self.kernel, self.stride, self.pad)
