"""Max and average pooling layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import im2col


class MaxPool2D(Layer):
    """Max pooling over square windows."""

    def __init__(self, name: str, kernel: int, stride: Optional[int] = None, pad: int = 0):
        super().__init__(name)
        self.kernel = int(kernel)
        self.stride = int(stride) if stride is not None else int(kernel)
        self.pad = int(pad)
        self._cache = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 4)
        batch, channels, height, width = inputs.shape
        cols, out_h, out_w = im2col(inputs, self.kernel, self.stride, self.pad)
        cols = cols.reshape(batch * out_h * out_w, channels, self.kernel * self.kernel)
        arg_max = cols.argmax(axis=2)
        out = np.take_along_axis(cols, arg_max[:, :, None], axis=2).squeeze(2)
        out = out.reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)
        if training:
            self._cache = (arg_max, inputs.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        from repro.nn.layers.conv import col2im

        arg_max, input_shape, out_h, out_w = self._cache
        batch, channels, _, _ = input_shape
        grad = grad_output.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, channels)
        grad_cols = np.zeros(
            (batch * out_h * out_w, channels, self.kernel * self.kernel),
            dtype=grad_output.dtype,
        )
        np.put_along_axis(grad_cols, arg_max[:, :, None], grad[:, :, None], axis=2)
        grad_cols = grad_cols.reshape(batch * out_h * out_w, -1)
        return col2im(grad_cols, input_shape, self.kernel, self.stride, self.pad)


class AvgPool2D(Layer):
    """Average pooling over square windows."""

    def __init__(self, name: str, kernel: int, stride: Optional[int] = None, pad: int = 0):
        super().__init__(name)
        self.kernel = int(kernel)
        self.stride = int(stride) if stride is not None else int(kernel)
        self.pad = int(pad)
        self._cache = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 4)
        batch, channels, height, width = inputs.shape
        cols, out_h, out_w = im2col(inputs, self.kernel, self.stride, self.pad)
        cols = cols.reshape(batch * out_h * out_w, channels, self.kernel * self.kernel)
        out = cols.mean(axis=2)
        out = out.reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)
        if training:
            self._cache = (inputs.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        from repro.nn.layers.conv import col2im

        input_shape, out_h, out_w = self._cache
        batch, channels, _, _ = input_shape
        window = self.kernel * self.kernel
        grad = grad_output.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, channels)
        grad_cols = np.repeat(grad[:, :, None] / window, window, axis=2)
        grad_cols = grad_cols.reshape(batch * out_h * out_w, -1)
        return col2im(grad_cols, input_shape, self.kernel, self.stride, self.pad)
