"""2-D convolution implemented with im2col.

This is a correctness-oriented CPU implementation: it exists so that the
functional distributed trainer can train real (small) convolutional networks
-- e.g. the CIFAR-10 quick model of Figure 11 -- with exactly the gradients a
GPU framework would compute.  Throughput of the big ImageNet models is
handled by the simulator, not by this class.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.exceptions import ShapeError
from repro.nn.initializers import he_normal, zeros
from repro.nn.layers.base import Layer


def im2col(inputs: np.ndarray, kernel: int, stride: int, pad: int,
           out: Optional[np.ndarray] = None) -> Tuple[np.ndarray, int, int]:
    """Unfold ``(B, C, H, W)`` inputs into ``(B*OH*OW, C*k*k)`` columns.

    The unfold is a zero-copy ``sliding_window_view`` over the padded input
    (strided for ``stride > 1``); the only data movement is the final
    gather into the column layout, which lands in ``out`` when a matching
    preallocated buffer is supplied.
    """
    batch, channels, height, width = inputs.shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"im2col produces empty output for input {inputs.shape} "
            f"kernel={kernel} stride={stride} pad={pad}"
        )
    if pad:
        padded = np.pad(
            inputs, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    else:
        padded = inputs
    # (B, C, OH', OW', k, k) view, strided down to (B, C, OH, OW, k, k).
    windows = sliding_window_view(padded, (kernel, kernel), axis=(2, 3))
    if stride > 1:
        windows = windows[:, :, ::stride, ::stride]
    # Column layout: (B, OH, OW, C, k, k) -> (B*OH*OW, C*k*k).
    windows = windows.transpose(0, 2, 3, 1, 4, 5)
    shape = (batch * out_h * out_w, channels * kernel * kernel)
    if out is not None and out.shape == shape and out.dtype == inputs.dtype:
        np.copyto(
            out.reshape(batch, out_h, out_w, channels, kernel, kernel), windows
        )
        return out, out_h, out_w
    cols = np.ascontiguousarray(windows).reshape(shape)
    return cols, out_h, out_w


def col2im(cols: np.ndarray, input_shape: Tuple[int, int, int, int], kernel: int,
           stride: int, pad: int) -> np.ndarray:
    """Fold ``(B*OH*OW, C*k*k)`` columns back into ``(B, C, H, W)`` gradients."""
    batch, channels, height, width = input_shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    cols = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad), dtype=cols.dtype
    )
    if stride >= kernel:
        # Non-overlapping windows: the scatter-add is a plain (disjoint)
        # strided assignment into a writeable window view -- no k x k loop.
        windows = sliding_window_view(
            padded, (kernel, kernel), axis=(2, 3), writeable=True
        )[:, :, ::stride, ::stride]
        np.add(windows, cols.transpose(0, 1, 4, 5, 2, 3), out=windows)
    else:
        # Overlapping windows scatter-add into aliased memory, which a
        # single strided ufunc call cannot express safely; accumulate one
        # kernel offset at a time (each offset's writes are disjoint).
        for y in range(kernel):
            y_max = y + stride * out_h
            for x in range(kernel):
                x_max = x + stride * out_w
                padded[:, :, y:y_max:stride, x:x_max:stride] += cols[:, :, y, x, :, :]
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


def _im2col_packed(inputs: np.ndarray, kernel: int, stride: int, pad: int,
                   out: Optional[np.ndarray] = None
                   ) -> Tuple[np.ndarray, int, int]:
    """Unfold ``(B, C, H, W)`` inputs into packed ``(B, C*k*k, OH*OW)`` columns.

    The packed layout keeps the batch axis outermost, which makes the window
    gather a long-contiguous-run copy (about 4x faster than gathering into
    the ``(B*OH*OW, C*k*k)`` layout for small kernels) and lets the forward
    output, the backward gradient and col2im all reshape as views instead of
    transposing.  The GEMMs become batched over ``B``.
    """
    batch, channels, height, width = inputs.shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"im2col produces empty output for input {inputs.shape} "
            f"kernel={kernel} stride={stride} pad={pad}"
        )
    if pad:
        padded = np.pad(
            inputs, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    else:
        padded = inputs
    windows = sliding_window_view(padded, (kernel, kernel), axis=(2, 3))
    if stride > 1:
        windows = windows[:, :, ::stride, ::stride]
    # (B, C, OH, OW, ky, kx) -> (B, C, ky, kx, OH, OW), gathered contiguously.
    windows = windows.transpose(0, 1, 4, 5, 2, 3)
    shape = (batch, channels * kernel * kernel, out_h * out_w)
    if out is not None and out.shape == shape and out.dtype == inputs.dtype:
        np.copyto(
            out.reshape(batch, channels, kernel, kernel, out_h, out_w), windows
        )
        return out, out_h, out_w
    cols = np.ascontiguousarray(windows).reshape(shape)
    return cols, out_h, out_w


def _col2im_packed(cols: np.ndarray, input_shape: Tuple[int, int, int, int],
                   kernel: int, stride: int, pad: int) -> np.ndarray:
    """Fold packed ``(B, C*k*k, OH*OW)`` columns back into ``(B, C, H, W)``."""
    batch, channels, height, width = input_shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    cols = cols.reshape(batch, channels, kernel, kernel, out_h, out_w)
    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad), dtype=cols.dtype
    )
    if stride >= kernel:
        windows = sliding_window_view(
            padded, (kernel, kernel), axis=(2, 3), writeable=True
        )[:, :, ::stride, ::stride]
        np.add(windows, cols.transpose(0, 1, 4, 5, 2, 3), out=windows)
    else:
        for y in range(kernel):
            y_max = y + stride * out_h
            for x in range(kernel):
                x_max = x + stride * out_w
                padded[:, :, y:y_max:stride, x:x_max:stride] += cols[:, :, y, x]
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


class Conv2D(Layer):
    """2-D convolution with square kernels over ``(B, C, H, W)`` inputs."""

    def __init__(self, name: str, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, pad: int = 0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel = int(kernel)
        self.stride = int(stride)
        self.pad = int(pad)
        fan_in = self.in_channels * self.kernel * self.kernel
        self.params = {
            "weight": he_normal(
                (self.out_channels, self.in_channels, self.kernel, self.kernel),
                fan_in=fan_in,
                rng=rng,
            ),
            "bias": zeros((self.out_channels,)),
        }
        self.zero_grads()
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int], int, int]] = None
        # Column buffers reused across training iterations (same input shape
        # -> zero allocation on the forward/backward GEMM staging).
        self._col_buffer: Optional[np.ndarray] = None
        self._grad_col_buffer: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 4)
        if inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"layer {self.name!r}: expected {self.in_channels} input channels, "
                f"got {inputs.shape[1]}"
            )
        if training:
            # The buffer may still be referenced by a pending backward of a
            # *previous* training forward; overwriting matches the seed
            # semantics (backward always uses the latest training forward).
            cols, out_h, out_w = _im2col_packed(inputs, self.kernel, self.stride,
                                                self.pad, out=self._col_buffer)
            self._col_buffer = cols
        else:
            # Inference forwards must not clobber a pending backward's cache.
            cols, out_h, out_w = _im2col_packed(inputs, self.kernel, self.stride,
                                                self.pad)
        weight_matrix = self.params["weight"].reshape(self.out_channels, -1)
        # (O, C*k*k) @ (B, C*k*k, P) -> (B, O, P); the output reshapes to
        # (B, O, OH, OW) as a view -- no transpose.
        out = np.matmul(weight_matrix, cols)
        out += self.params["bias"][:, None]
        out = out.reshape(inputs.shape[0], self.out_channels, out_h, out_w)
        if training:
            self._cache = (cols, inputs.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        cols, input_shape, out_h, out_w = self._cache
        self._check_input(grad_output, 4, "gradient")
        batch = grad_output.shape[0]
        # (B, O, OH, OW) -> (B, O, P) is a view for contiguous gradients.
        grad_mat = grad_output.reshape(batch, self.out_channels, out_h * out_w)
        weight_matrix = self.params["weight"].reshape(self.out_channels, -1)
        grad_weight = np.matmul(grad_mat, cols.transpose(0, 2, 1)).sum(axis=0)
        self.grads["weight"] = grad_weight.reshape(self.params["weight"].shape)
        self.grads["bias"] = grad_mat.sum(axis=(0, 2))
        buf = self._grad_col_buffer
        if (buf is not None and buf.shape == cols.shape
                and buf.dtype == np.result_type(grad_mat, weight_matrix)):
            grad_input_cols = np.matmul(weight_matrix.T, grad_mat, out=buf)
        else:
            grad_input_cols = np.matmul(weight_matrix.T, grad_mat)
            self._grad_col_buffer = grad_input_cols
        return _col2im_packed(grad_input_cols, input_shape, self.kernel,
                              self.stride, self.pad)
