"""2-D convolution implemented with im2col.

This is a correctness-oriented CPU implementation: it exists so that the
functional distributed trainer can train real (small) convolutional networks
-- e.g. the CIFAR-10 quick model of Figure 11 -- with exactly the gradients a
GPU framework would compute.  Throughput of the big ImageNet models is
handled by the simulator, not by this class.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.initializers import he_normal, zeros
from repro.nn.layers.base import Layer


def im2col(inputs: np.ndarray, kernel: int, stride: int, pad: int) -> Tuple[np.ndarray, int, int]:
    """Unfold ``(B, C, H, W)`` inputs into ``(B*OH*OW, C*k*k)`` columns."""
    batch, channels, height, width = inputs.shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"im2col produces empty output for input {inputs.shape} "
            f"kernel={kernel} stride={stride} pad={pad}"
        )
    padded = np.pad(
        inputs, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
    )
    cols = np.empty(
        (batch, channels, kernel, kernel, out_h, out_w), dtype=inputs.dtype
    )
    for y in range(kernel):
        y_max = y + stride * out_h
        for x in range(kernel):
            x_max = x + stride * out_w
            cols[:, :, y, x, :, :] = padded[:, :, y:y_max:stride, x:x_max:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(batch * out_h * out_w, -1)
    return cols, out_h, out_w


def col2im(cols: np.ndarray, input_shape: Tuple[int, int, int, int], kernel: int,
           stride: int, pad: int) -> np.ndarray:
    """Fold ``(B*OH*OW, C*k*k)`` columns back into ``(B, C, H, W)`` gradients."""
    batch, channels, height, width = input_shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    cols = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad), dtype=cols.dtype
    )
    for y in range(kernel):
        y_max = y + stride * out_h
        for x in range(kernel):
            x_max = x + stride * out_w
            padded[:, :, y:y_max:stride, x:x_max:stride] += cols[:, :, y, x, :, :]
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


class Conv2D(Layer):
    """2-D convolution with square kernels over ``(B, C, H, W)`` inputs."""

    def __init__(self, name: str, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, pad: int = 0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel = int(kernel)
        self.stride = int(stride)
        self.pad = int(pad)
        fan_in = self.in_channels * self.kernel * self.kernel
        self.params = {
            "weight": he_normal(
                (self.out_channels, self.in_channels, self.kernel, self.kernel),
                fan_in=fan_in,
                rng=rng,
            ),
            "bias": zeros((self.out_channels,)),
        }
        self.zero_grads()
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int], int, int]] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 4)
        if inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"layer {self.name!r}: expected {self.in_channels} input channels, "
                f"got {inputs.shape[1]}"
            )
        cols, out_h, out_w = im2col(inputs, self.kernel, self.stride, self.pad)
        weight_matrix = self.params["weight"].reshape(self.out_channels, -1)
        out = cols @ weight_matrix.T + self.params["bias"]
        out = out.reshape(inputs.shape[0], out_h, out_w, self.out_channels)
        out = out.transpose(0, 3, 1, 2)
        if training:
            self._cache = (cols, inputs.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        cols, input_shape, out_h, out_w = self._cache
        self._check_input(grad_output, 4, "gradient")
        grad_cols = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        weight_matrix = self.params["weight"].reshape(self.out_channels, -1)
        grad_weight = grad_cols.T @ cols
        self.grads["weight"] = grad_weight.reshape(self.params["weight"].shape)
        self.grads["bias"] = grad_cols.sum(axis=0)
        grad_input_cols = grad_cols @ weight_matrix
        return col2im(grad_input_cols, input_shape, self.kernel, self.stride, self.pad)
