"""Fully-connected layer.

The Dense layer keeps the per-batch activations and output gradients around
after the backward pass so the sufficient factors ``(u, v)`` of its weight
gradient can be extracted without recomputation -- this is the hook
sufficient-factor broadcasting (Section 2.1 of the paper) relies on:
``dW = x^T @ dy`` is exactly the sum over the batch of outer products of the
per-sample input activation and per-sample output gradient.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.initializers import xavier_uniform, zeros
from repro.nn.layers.base import Layer
from repro.exceptions import ShapeError


class Dense(Layer):
    """Affine transformation ``y = x W + b`` with ``W`` of shape ``(M, N)``."""

    def __init__(self, name: str, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.params = {
            "weight": xavier_uniform(
                (self.in_features, self.out_features),
                fan_in=self.in_features,
                fan_out=self.out_features,
                rng=rng,
            ),
            "bias": zeros((self.out_features,)),
        }
        self.zero_grads()
        self._last_input: Optional[np.ndarray] = None
        self._last_grad_output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 2)
        if inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"layer {self.name!r}: expected {self.in_features} input features, "
                f"got {inputs.shape[1]}"
            )
        self._last_input = inputs if training else None
        return inputs @ self.params["weight"] + self.params["bias"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        self._check_input(grad_output, 2, "gradient")
        self._last_grad_output = grad_output
        self.grads["weight"] = self._last_input.T @ grad_output
        self.grads["bias"] = grad_output.sum(axis=0)
        return grad_output @ self.params["weight"].T

    # -- sufficient factors -----------------------------------------------------
    def sufficient_factors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the ``(U, V)`` factors of the last weight gradient.

        ``U`` has shape ``(K, M)`` (per-sample input activations) and ``V``
        has shape ``(K, N)`` (per-sample output gradients) so that
        ``dW = U^T @ V``.

        Raises:
            RuntimeError: if no backward pass has been run yet.
        """
        if self._last_input is None or self._last_grad_output is None:
            raise RuntimeError(
                f"layer {self.name!r}: sufficient factors unavailable before backward()"
            )
        return self._last_input, self._last_grad_output
