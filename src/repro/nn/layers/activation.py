"""Activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit, applied elementwise."""

    def __init__(self, name: str):
        super().__init__(name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        mask = inputs > 0
        if training:
            self._mask = mask
        return inputs * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        return grad_output * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self, name: str):
        super().__init__(name)
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.tanh(inputs)
        if training:
            self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        return grad_output * (1.0 - self._output ** 2)
