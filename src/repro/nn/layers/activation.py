"""Activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit, applied elementwise."""

    def __init__(self, name: str):
        super().__init__(name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        mask = inputs > 0
        if training:
            self._mask = mask
        return inputs * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        return grad_output * self._mask


class GELU(Layer):
    """Gaussian error linear unit (tanh approximation), applied elementwise.

    Uses the tanh form standard in GPT-family models:
    ``0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 * x^3)))``.
    """

    _COEFF = 0.044715
    _SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))

    def __init__(self, name: str):
        super().__init__(name)
        self._input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        inner = self._SQRT_2_OVER_PI * (inputs + self._COEFF * inputs ** 3)
        out = 0.5 * inputs * (1.0 + np.tanh(inner))
        if training:
            self._input = inputs
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        x = self._input
        inner = self._SQRT_2_OVER_PI * (x + self._COEFF * x ** 3)
        tanh_inner = np.tanh(inner)
        d_inner = self._SQRT_2_OVER_PI * (1.0 + 3.0 * self._COEFF * x ** 2)
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * x * (1.0 - tanh_inner ** 2) * d_inner
        return grad_output * local


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self, name: str):
        super().__init__(name)
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.tanh(inputs)
        if training:
            self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        return grad_output * (1.0 - self._output ** 2)
