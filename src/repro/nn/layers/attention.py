"""Multi-head attention and the composite transformer block.

The runnable transformer mirrors the declarative spec in
:mod:`repro.nn.model_zoo.transformer`: the QKV and output projections are
FC-shaped matmuls (so in the analytic model they enter Algorithm-1 scheme
decisions as ``fc_dims`` sync units), while the attention core itself is
parameter-free.  Because :class:`repro.nn.network.Network` is strictly
sequential, the residual connections live inside :class:`TransformerBlock`,
which exposes its sublayers' parameters through one prefixed dict sharing the
underlying arrays -- ``set_params`` on the block therefore updates the
sublayers in place, which the parameter-server pull path relies on.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.initializers import xavier_uniform, zeros
from repro.nn.layers.activation import GELU
from repro.nn.layers.base import Layer
from repro.nn.layers.dense import Dense
from repro.nn.layers.norm import LayerNorm


class MultiHeadAttention(Layer):
    """Scaled dot-product self-attention with fused QKV projection.

    Input and output are ``(B, T, C)``.  Parameters are the FC-shaped
    ``qkv_weight (C, 3C)`` / ``proj_weight (C, C)`` matrices plus biases.

    Args:
        name: layer name.
        dim: model width ``C``; must be divisible by ``num_heads``.
        num_heads: number of attention heads.
        causal: mask out future positions (GPT-style) when ``True``.
        rng: numpy generator for weight initialisation.
    """

    def __init__(self, name: str, dim: int, num_heads: int, causal: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        if dim % num_heads != 0:
            raise ShapeError(
                f"layer {name!r}: dim {dim} not divisible by {num_heads} heads"
            )
        self.dim = int(dim)
        self.num_heads = int(num_heads)
        self.head_dim = self.dim // self.num_heads
        self.causal = bool(causal)
        self.params = {
            "qkv_weight": xavier_uniform((self.dim, 3 * self.dim),
                                         fan_in=self.dim, fan_out=3 * self.dim,
                                         rng=rng),
            "qkv_bias": zeros((3 * self.dim,)),
            "proj_weight": xavier_uniform((self.dim, self.dim),
                                          fan_in=self.dim, fan_out=self.dim,
                                          rng=rng),
            "proj_bias": zeros((self.dim,)),
        }
        self.zero_grads()
        self._cache: Optional[Tuple[np.ndarray, ...]] = None

    def _split_heads(self, tensor: np.ndarray, batch: int, seq: int) -> np.ndarray:
        return tensor.reshape(batch, seq, self.num_heads,
                              self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, tensor: np.ndarray, batch: int, seq: int) -> np.ndarray:
        return tensor.transpose(0, 2, 1, 3).reshape(batch * seq, self.dim)

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 3)
        if inputs.shape[2] != self.dim:
            raise ShapeError(
                f"layer {self.name!r}: expected width {self.dim}, "
                f"got shape {inputs.shape}"
            )
        batch, seq, _ = inputs.shape
        flat = inputs.reshape(batch * seq, self.dim)
        qkv = flat @ self.params["qkv_weight"] + self.params["qkv_bias"]
        query = self._split_heads(qkv[:, :self.dim].reshape(batch, seq, self.dim),
                                  batch, seq)
        key = self._split_heads(
            qkv[:, self.dim:2 * self.dim].reshape(batch, seq, self.dim),
            batch, seq)
        value = self._split_heads(qkv[:, 2 * self.dim:].reshape(batch, seq, self.dim),
                                  batch, seq)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (query @ key.transpose(0, 1, 3, 2)) * scale
        if self.causal:
            mask = np.tril(np.ones((seq, seq), dtype=bool))
            scores = np.where(mask, scores, -np.inf)
        scores = scores - scores.max(axis=-1, keepdims=True)
        weights = np.exp(scores)
        weights = weights / weights.sum(axis=-1, keepdims=True)
        context = weights @ value                     # (B, H, T, hd)
        merged = self._merge_heads(context, batch, seq)
        out = merged @ self.params["proj_weight"] + self.params["proj_bias"]
        if training:
            self._cache = (flat, query, key, value, weights, merged,
                           np.array([batch, seq]))
        return out.reshape(batch, seq, self.dim)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        self._check_input(grad_output, 3, "gradient")
        flat, query, key, value, weights, merged, dims = self._cache
        batch, seq = int(dims[0]), int(dims[1])
        grad_flat = grad_output.reshape(batch * seq, self.dim)

        self.grads["proj_weight"] = merged.T @ grad_flat
        self.grads["proj_bias"] = grad_flat.sum(axis=0)
        grad_context = self._split_heads(
            (grad_flat @ self.params["proj_weight"].T).reshape(
                batch, seq, self.dim), batch, seq)

        grad_weights = grad_context @ value.transpose(0, 1, 3, 2)
        grad_value = weights.transpose(0, 1, 3, 2) @ grad_context
        # softmax backward; masked positions carry weight 0, hence gradient 0.
        grad_scores = weights * (
            grad_weights - (grad_weights * weights).sum(axis=-1, keepdims=True))
        scale = 1.0 / np.sqrt(self.head_dim)
        grad_scores = grad_scores * scale
        grad_query = grad_scores @ key
        grad_key = grad_scores.transpose(0, 1, 3, 2) @ query

        grad_qkv = np.concatenate([
            self._merge_heads(grad_query, batch, seq),
            self._merge_heads(grad_key, batch, seq),
            self._merge_heads(grad_value, batch, seq),
        ], axis=1)
        self.grads["qkv_weight"] = flat.T @ grad_qkv
        self.grads["qkv_bias"] = grad_qkv.sum(axis=0)
        grad_input = grad_qkv @ self.params["qkv_weight"].T
        return grad_input.reshape(batch, seq, self.dim)


class TransformerBlock(Layer):
    """Pre-norm transformer block: ``x + attn(ln1(x))`` then ``h + mlp(ln2(h))``.

    The sequential :class:`~repro.nn.network.Network` has no residual wiring,
    so the skip connections live here; the block's ``params``/``grads`` dicts
    expose every sublayer parameter under a dotted prefix (``attn.qkv_weight``,
    ``mlp_fc.weight``, ...) while sharing the sublayers' arrays.
    """

    def __init__(self, name: str, dim: int, num_heads: int, mlp_ratio: int = 4,
                 causal: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.dim = int(dim)
        hidden = int(mlp_ratio) * self.dim
        self._sublayers: Dict[str, Layer] = {
            "ln1": LayerNorm(f"{name}.ln1", self.dim),
            "attn": MultiHeadAttention(f"{name}.attn", self.dim, num_heads,
                                       causal=causal, rng=rng),
            "ln2": LayerNorm(f"{name}.ln2", self.dim),
            "mlp_fc": Dense(f"{name}.mlp_fc", self.dim, hidden, rng=rng),
            "mlp_act": GELU(f"{name}.mlp_act"),
            "mlp_proj": Dense(f"{name}.mlp_proj", hidden, self.dim, rng=rng),
        }
        self.params = {
            f"{prefix}.{key}": array
            for prefix, sub in self._sublayers.items()
            for key, array in sub.params.items()
        }
        self.zero_grads()

    def sublayer(self, prefix: str) -> Layer:
        """Return a sublayer by its parameter prefix (e.g. ``"attn"``)."""
        return self._sublayers[prefix]

    def _collect_grads(self) -> None:
        self.grads = {
            f"{prefix}.{key}": grad
            for prefix, sub in self._sublayers.items()
            for key, grad in sub.grads.items()
        }

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 3)
        sub = self._sublayers
        attended = sub["attn"].forward(
            sub["ln1"].forward(inputs, training), training)
        hidden = inputs + attended
        batch, seq, dim = hidden.shape
        flat = sub["ln2"].forward(hidden.reshape(batch * seq, dim), training)
        mlp_out = sub["mlp_proj"].forward(
            sub["mlp_act"].forward(
                sub["mlp_fc"].forward(flat, training), training), training)
        return hidden + mlp_out.reshape(batch, seq, dim)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._check_input(grad_output, 3, "gradient")
        sub = self._sublayers
        batch, seq, dim = grad_output.shape
        grad_flat = grad_output.reshape(batch * seq, dim)
        grad_mlp = sub["ln2"].backward(
            sub["mlp_fc"].backward(
                sub["mlp_act"].backward(
                    sub["mlp_proj"].backward(grad_flat))))
        grad_hidden = grad_output + grad_mlp.reshape(batch, seq, dim)
        grad_attn_in = sub["ln1"].backward(sub["attn"].backward(grad_hidden))
        self._collect_grads()
        return grad_hidden + grad_attn_in


class TokenFlatten(Layer):
    """Fold the sequence axis into the batch: ``(B, T, C) -> (B*T, C)``.

    Placed before the vocabulary head so the head stays a plain
    :class:`~repro.nn.layers.dense.Dense` -- 2-D activations in, exact
    ``(K=B*T)``-sample sufficient factors out.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 3)
        if training:
            self._shape = inputs.shape
        return inputs.reshape(inputs.shape[0] * inputs.shape[1], inputs.shape[2])

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        return grad_output.reshape(self._shape)


class SequenceMeanPool(Layer):
    """Mean-pool the sequence axis: ``(B, T, C) -> (B, C)``.

    Used by the sequence-classification head variant so the trainer's
    ``(batch,) -> scalar-label`` loss applies unchanged to token inputs.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        self._check_input(inputs, 3)
        if training:
            self._shape = inputs.shape
        return inputs.mean(axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward called before forward(training=True)"
            )
        self._check_input(grad_output, 2, "gradient")
        batch, seq, dim = self._shape
        return np.broadcast_to(
            grad_output[:, None, :] / seq, (batch, seq, dim)).copy()


__all__ = ["MultiHeadAttention", "TransformerBlock", "TokenFlatten",
           "SequenceMeanPool"]
