"""Inverted dropout layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers.base import Layer


class Dropout(Layer):
    """Inverted dropout: activations are scaled at train time, identity at eval."""

    def __init__(self, name: str, rate: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
