"""Numerical gradient checking.

Used by the test suite to verify that every runnable layer's analytic
backward pass agrees with central finite differences -- the gradients the
distributed runtime synchronises must be correct before the communication
architecture on top of them means anything.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.loss import SoftmaxCrossEntropyLoss


def numeric_gradient(func: Callable[[np.ndarray], float], array: np.ndarray,
                     epsilon: float = 1e-4, max_elements: int = 64,
                     rng: np.random.Generator | None = None,
                     indices: np.ndarray | None = None) -> Dict[tuple, float]:
    """Central-difference gradient of ``func`` at a sample of elements.

    For large arrays only ``max_elements`` randomly chosen entries are
    perturbed, which keeps the check cheap while still exercising all parts
    of the tensor.  Callers may instead pass explicit flat ``indices`` --
    :func:`check_layer_gradients` uses this to aim the sample at entries a
    sparse backward pass actually touched.

    Returns:
        Mapping from element index tuple to the estimated partial derivative.
    """
    if not np.issubdtype(array.dtype, np.floating):
        raise TypeError(
            f"numeric_gradient needs a float array to perturb, got dtype "
            f"{array.dtype}"
        )
    rng = rng or np.random.default_rng(0)
    if indices is not None:
        flat_indices = np.asarray(indices)
    elif array.size > max_elements:
        flat_indices = rng.choice(array.size, size=max_elements, replace=False)
    else:
        flat_indices = np.arange(array.size)
    grads: Dict[tuple, float] = {}
    for flat_index in flat_indices:
        index = np.unravel_index(int(flat_index), array.shape)
        original = array[index]
        array[index] = original + epsilon
        loss_plus = func(array)
        array[index] = original - epsilon
        loss_minus = func(array)
        array[index] = original
        grads[index] = (loss_plus - loss_minus) / (2.0 * epsilon)
    return grads


def _sample_param_indices(analytic: np.ndarray, max_elements: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Flat indices to perturb, biased toward nonzero analytic entries.

    A uniform sample is vacuous for sparse-gradient parameters -- an
    embedding table whose batch touches 20 of 50k rows would almost always
    compare 0 against 0.  Spend most of the budget on entries the backward
    pass actually wrote, keeping a few uniform picks to catch spurious
    nonzero analytic gradients.
    """
    size = analytic.size
    if size <= max_elements:
        return np.arange(size)
    flat = np.asarray(analytic).ravel()
    nonzero = np.flatnonzero(flat)
    if nonzero.size == 0 or nonzero.size >= size - max_elements:
        return rng.choice(size, size=max_elements, replace=False)
    budget = max(max_elements - max(max_elements // 4, 1), 1)
    targeted = rng.choice(nonzero, size=min(budget, nonzero.size), replace=False)
    uniform = rng.choice(size, size=max_elements - targeted.size, replace=False)
    return np.unique(np.concatenate([targeted, uniform]))


def check_layer_gradients(layer: Layer, inputs: np.ndarray, labels: np.ndarray | None = None,
                          epsilon: float = 1e-4, tolerance: float = 1e-2,
                          max_elements: int = 32) -> float:
    """Verify a layer's parameter gradients against finite differences.

    The layer output is reduced with a fixed random projection so the check
    works for layers of any output shape, and parameters of any shape or
    sparsity are handled here rather than per-test: non-float auxiliary
    state is skipped, and the perturbation sample is biased toward entries
    with nonzero analytic gradient (see :func:`_sample_param_indices`).
    Integer inputs (token ids) pass through untouched -- only parameters
    are perturbed.

    Returns:
        The maximum relative error observed across all checked elements.

    Raises:
        AssertionError: if any relative error exceeds ``tolerance``.
    """
    rng = np.random.default_rng(12345)
    out = layer.forward(inputs.copy(), training=True)
    projection = rng.standard_normal(out.shape).astype(np.float64)

    def loss_fn(_: np.ndarray) -> float:
        return float((layer.forward(inputs.copy(), training=True) * projection).sum())

    # Analytic gradients.
    layer.forward(inputs.copy(), training=True)
    layer.backward(projection)
    max_rel_error = 0.0
    for key, param in layer.params.items():
        if not np.issubdtype(param.dtype, np.floating):
            continue  # non-float auxiliary state has no gradient to check
        analytic = layer.grads[key]
        indices = _sample_param_indices(analytic, max_elements, rng)
        numeric = numeric_gradient(lambda arr: loss_fn(arr), param,
                                   epsilon=epsilon, max_elements=max_elements,
                                   rng=rng, indices=indices)
        for index, estimate in numeric.items():
            got = float(analytic[index])
            scale = max(abs(estimate), abs(got), 1e-8)
            rel_error = abs(estimate - got) / scale
            max_rel_error = max(max_rel_error, rel_error)
            assert rel_error < tolerance, (
                f"layer {layer.name!r} param {key!r} index {index}: "
                f"numeric={estimate:.6f} analytic={got:.6f} rel_error={rel_error:.4f}"
            )
    return max_rel_error


def check_network_input_gradient(network, inputs: np.ndarray, labels: np.ndarray,
                                 epsilon: float = 1e-3, tolerance: float = 5e-2,
                                 max_elements: int = 16) -> float:
    """Verify a network's end-to-end input gradient against finite differences."""
    loss_fn = SoftmaxCrossEntropyLoss()

    def full_loss(x: np.ndarray) -> float:
        logits = network.forward(x, training=True)
        loss, _ = loss_fn.forward(logits, labels)
        return loss

    logits = network.forward(inputs, training=True)
    _, grad_logits = loss_fn.forward(logits, labels)
    grad_input = network.backward(grad_logits)

    numeric = numeric_gradient(full_loss, inputs, epsilon=epsilon,
                               max_elements=max_elements)
    max_rel_error = 0.0
    for index, estimate in numeric.items():
        got = float(grad_input[index])
        scale = max(abs(estimate), abs(got), 1e-6)
        rel_error = abs(estimate - got) / scale
        max_rel_error = max(max_rel_error, rel_error)
        assert rel_error < tolerance, (
            f"input gradient at {index}: numeric={estimate:.6f} analytic={got:.6f} "
            f"rel_error={rel_error:.4f}"
        )
    return max_rel_error
