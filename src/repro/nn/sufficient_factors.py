"""Sufficient factors of fully-connected gradients.

For an FC layer trained with SGD, the gradient of the weight matrix over a
batch of ``K`` samples is ``dW = sum_i u_i v_i^T`` where ``u_i`` is the
layer's input activation for sample ``i`` and ``v_i`` the gradient of the
loss w.r.t. the layer's pre-activation output for sample ``i``.  The pair
``(u_i, v_i)`` are the *sufficient factors* (SFs, Section 2.1).  Transmitting
the factors instead of the dense ``M x N`` matrix costs ``K (M + N)`` floats
instead of ``M N``, which is the saving sufficient-factor broadcasting and
the Adam strategy exploit.

This module packages factor pairs for the wire and reconstructs dense
gradients on the receiving side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro import units
from repro.exceptions import ShapeError


@dataclass(frozen=True)
class SufficientFactors:
    """A batch of sufficient factors for one FC layer's weight gradient.

    Attributes:
        u: ``(K, M)`` input activations.
        v: ``(K, N)`` output gradients.
    """

    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        if self.u.ndim != 2 or self.v.ndim != 2:
            raise ShapeError(
                f"sufficient factors must be 2-D, got u={self.u.shape} v={self.v.shape}"
            )
        if self.u.shape[0] != self.v.shape[0]:
            raise ShapeError(
                "sufficient factor batch sizes differ: "
                f"u has {self.u.shape[0]} rows, v has {self.v.shape[0]}"
            )

    @property
    def batch_size(self) -> int:
        """Number of samples (``K``) represented by these factors."""
        return int(self.u.shape[0])

    @property
    def weight_shape(self) -> Tuple[int, int]:
        """Shape ``(M, N)`` of the dense gradient these factors reconstruct."""
        return int(self.u.shape[1]), int(self.v.shape[1])

    @property
    def nbytes(self) -> int:
        """Bytes needed to transmit the factors."""
        return int(self.u.nbytes + self.v.nbytes)

    @property
    def dense_nbytes(self) -> int:
        """Bytes the equivalent dense gradient matrix would occupy."""
        m, n = self.weight_shape
        return int(m * n * units.FLOAT32_BYTES)

    @property
    def compression_ratio(self) -> float:
        """Dense bytes divided by factor bytes (> 1 means SFs are smaller)."""
        return self.dense_nbytes / self.nbytes if self.nbytes else float("inf")

    def reconstruct(self, out: np.ndarray = None) -> np.ndarray:
        """Rebuild the dense gradient ``dW = U^T @ V``.

        Args:
            out: optional preallocated ``(M, N)`` array to write into.
        """
        if out is not None:
            return np.matmul(self.u.T, self.v, out=out)
        return self.u.T @ self.v


def batch_reconstruct(factors: Sequence[SufficientFactors],
                      out: np.ndarray = None) -> np.ndarray:
    """Sum the dense gradients of several factor batches with one GEMM.

    By the batched-outer-product identity of Eq. 1,
    ``sum_j U_j^T @ V_j == concat(U)^T @ concat(V)`` (rows concatenated along
    the sample axis), so the whole aggregate costs a single
    ``(M, sum K_j) x (sum K_j, N)`` matrix product instead of one dense
    ``M x N`` temporary per contribution.

    Args:
        factors: factor batches; all must share the same ``(M, N)``
            weight shape.
        out: optional preallocated ``(M, N)`` array to write into.

    Raises:
        ShapeError: if ``factors`` is empty or the weight shapes differ.
    """
    if not factors:
        raise ShapeError("batch_reconstruct needs at least one factor batch")
    first = factors[0]
    if len(factors) == 1:
        return first.reconstruct(out=out)
    shape = first.weight_shape
    for f in factors[1:]:
        if f.weight_shape != shape:
            raise ShapeError(
                f"cannot batch factors of shape {f.weight_shape} with {shape}"
            )
    u_all = np.concatenate([f.u for f in factors], axis=0)
    v_all = np.concatenate([f.v for f in factors], axis=0)
    if out is not None:
        return np.matmul(u_all.T, v_all, out=out)
    return u_all.T @ v_all


def factorize_dense_gradient(inputs: np.ndarray, grad_output: np.ndarray) -> SufficientFactors:
    """Package a layer's cached activations/gradients as sufficient factors.

    Args:
        inputs: ``(K, M)`` input activations of the FC layer.
        grad_output: ``(K, N)`` gradients w.r.t. the layer's outputs.
    """
    return SufficientFactors(u=np.ascontiguousarray(inputs),
                             v=np.ascontiguousarray(grad_output))


def reconstruction_matches(factors: SufficientFactors, dense: np.ndarray,
                           atol: float = 1e-5) -> bool:
    """Check that the factors reconstruct ``dense`` within tolerance."""
    if dense.shape != factors.weight_shape:
        raise ShapeError(
            f"dense gradient shape {dense.shape} does not match factors "
            f"{factors.weight_shape}"
        )
    return bool(np.allclose(factors.reconstruct(), dense, atol=atol))
