"""Weight initialisers for the numpy layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Args:
        shape: shape of the weight tensor to create.
        fan_in: number of input units feeding the weight.
        fan_out: number of output units the weight feeds.
        rng: numpy random generator (callers own seeding).
    """
    limit = np.sqrt(6.0 / float(fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialisation, suited to ReLU networks."""
    std = np.sqrt(2.0 / float(fan_in))
    return (rng.standard_normal(size=shape) * std).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float32)
