"""Architecture specifications.

A :class:`ModelSpec` is a purely declarative, weight-free description of a
neural network: an ordered list of :class:`LayerSpec` records carrying the
information Poseidon needs -- parameter shapes (to compute bytes on the
wire and to decide whether a layer's gradient is sufficient-factor
decomposable), and per-sample FLOP counts (to model GPU compute time).

The paper's cost model (Table 1) and the `BestScheme` algorithm (Algorithm 1)
operate on exactly this information: layer type, the ``M x N`` shape of FC
layers, batch size and cluster size.

Specs are built with :class:`SpecBuilder`, a tiny builder that tracks the
spatial dimensions of the activations so that model-zoo definitions read like
ordinary network definitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro import units
from repro.exceptions import ModelSpecError


class LayerKind(str, enum.Enum):
    """Categories of layers, as relevant to communication scheduling."""

    INPUT = "input"
    CONV = "conv"
    FC = "fc"
    POOL = "pool"
    ACTIVATION = "activation"
    NORM = "norm"
    DROPOUT = "dropout"
    FLATTEN = "flatten"
    CONCAT = "concat"
    ADD = "add"
    SOFTMAX = "softmax"
    EMBED = "embed"
    ATTENTION = "attention"

    @property
    def has_parameters(self) -> bool:
        """Whether layers of this kind can carry trainable parameters."""
        return self in (LayerKind.CONV, LayerKind.FC, LayerKind.NORM,
                        LayerKind.EMBED)


@dataclass(frozen=True)
class LayerSpec:
    """Declarative description of one layer.

    Attributes:
        name: unique layer name within the model.
        kind: the layer's :class:`LayerKind`.
        param_count: total number of trainable scalars (weights + biases).
        param_shape: shape of the *weight matrix* for FC layers (``(M, N)``,
            input dim by output dim) or of the filter bank for CONV layers;
            ``None`` for parameter-free layers.
        flops_forward: floating point operations of the forward pass for a
            single sample.
        flops_backward: same for the backward pass (gradient w.r.t. inputs
            and parameters).
        output_shape: per-sample output shape, e.g. ``(channels, h, w)`` or
            ``(features,)``.
        sf_decomposable: whether the layer's gradient can be expressed as a
            sum of ``K`` outer products (true for fully-connected layers),
            enabling sufficient-factor broadcasting.
    """

    name: str
    kind: LayerKind
    param_count: int = 0
    param_shape: Optional[Tuple[int, ...]] = None
    flops_forward: float = 0.0
    flops_backward: float = 0.0
    output_shape: Tuple[int, ...] = ()
    sf_decomposable: bool = False

    def __post_init__(self) -> None:
        if self.param_count < 0:
            raise ModelSpecError(
                f"layer {self.name!r}: param_count must be >= 0, got {self.param_count}"
            )
        if self.flops_forward < 0 or self.flops_backward < 0:
            raise ModelSpecError(f"layer {self.name!r}: negative FLOP count")
        if self.param_count > 0 and not self.kind.has_parameters:
            raise ModelSpecError(
                f"layer {self.name!r}: kind {self.kind.value} cannot hold parameters"
            )
        if self.sf_decomposable and self.kind is not LayerKind.FC:
            raise ModelSpecError(
                f"layer {self.name!r}: only FC layers are sufficient-factor decomposable"
            )

    @property
    def has_parameters(self) -> bool:
        """Whether this particular layer carries trainable parameters."""
        return self.param_count > 0

    @property
    def param_bytes(self) -> int:
        """Size of the layer's parameters (and of a dense gradient) in bytes."""
        return int(self.param_count * units.FLOAT32_BYTES)

    @property
    def fc_dims(self) -> Tuple[int, int]:
        """The ``(M, N)`` dimensions of an FC layer's weight matrix.

        Raises:
            ModelSpecError: if the layer is not a fully-connected layer.
        """
        if self.kind is not LayerKind.FC or self.param_shape is None:
            raise ModelSpecError(f"layer {self.name!r} is not an FC layer")
        if len(self.param_shape) != 2:
            raise ModelSpecError(
                f"layer {self.name!r}: FC weight shape must be 2-D, got {self.param_shape}"
            )
        return self.param_shape[0], self.param_shape[1]

    def sufficient_factor_bytes(self, batch_size: int) -> int:
        """Bytes required to send this layer's gradient as sufficient factors.

        For an FC layer with weight ``M x N`` trained on a batch of ``K``
        samples, the gradient is the sum of ``K`` outer products
        ``u_i v_i^T`` with ``u_i`` of length ``M`` and ``v_i`` of length
        ``N``; transmitting the factors costs ``K (M + N)`` floats.

        Raises:
            ModelSpecError: if the layer is not SF-decomposable.
        """
        if not self.sf_decomposable:
            raise ModelSpecError(
                f"layer {self.name!r} is not sufficient-factor decomposable"
            )
        m, n = self.fc_dims
        return int(batch_size * (m + n) * units.FLOAT32_BYTES)


@dataclass(frozen=True)
class ModelSpec:
    """A weight-free description of a full network.

    Attributes:
        name: model name as used in the paper (e.g. ``"VGG19-22K"``).
        layers: ordered layer specifications, input first.
        dataset: name of the dataset the paper trains this model on.
        default_batch_size: the per-GPU batch size from paper Table 3.
        reference_images_per_sec: single-node throughput reported in the
            paper (images/s) used to calibrate simulated compute time;
            ``None`` if the paper does not report one.
        notes: free-form remarks (e.g. substitutions).
    """

    name: str
    layers: Tuple[LayerSpec, ...]
    dataset: str = "synthetic"
    default_batch_size: int = 32
    reference_images_per_sec: Optional[float] = None
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.layers:
            raise ModelSpecError(f"model {self.name!r} has no layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ModelSpecError(f"model {self.name!r} has duplicate layer names: {dupes}")
        if self.default_batch_size < 1:
            raise ModelSpecError(
                f"model {self.name!r}: default_batch_size must be >= 1"
            )

    # -- aggregate statistics -------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of layer records (including parameter-free ones)."""
        return len(self.layers)

    @property
    def total_params(self) -> int:
        """Total trainable parameters across all layers."""
        return sum(layer.param_count for layer in self.layers)

    @property
    def total_param_bytes(self) -> int:
        """Total parameter (and dense-gradient) size in bytes."""
        return sum(layer.param_bytes for layer in self.layers)

    @property
    def fc_params(self) -> int:
        """Parameters held by fully-connected layers."""
        return sum(
            layer.param_count for layer in self.layers if layer.kind is LayerKind.FC
        )

    @property
    def conv_params(self) -> int:
        """Parameters held by convolutional layers."""
        return sum(
            layer.param_count for layer in self.layers if layer.kind is LayerKind.CONV
        )

    @property
    def fc_param_fraction(self) -> float:
        """Fraction of all parameters that live in FC layers."""
        total = self.total_params
        return self.fc_params / total if total else 0.0

    @property
    def flops_forward(self) -> float:
        """Per-sample forward FLOPs of the whole network."""
        return sum(layer.flops_forward for layer in self.layers)

    @property
    def flops_backward(self) -> float:
        """Per-sample backward FLOPs of the whole network."""
        return sum(layer.flops_backward for layer in self.layers)

    @property
    def flops_per_sample(self) -> float:
        """Per-sample FLOPs of a full forward+backward pass."""
        return self.flops_forward + self.flops_backward

    # -- views ----------------------------------------------------------------
    def parameter_layers(self) -> Tuple[LayerSpec, ...]:
        """Layers that carry trainable parameters (the ones that synchronize)."""
        return tuple(layer for layer in self.layers if layer.has_parameters)

    def fc_layers(self) -> Tuple[LayerSpec, ...]:
        """Fully-connected layers."""
        return tuple(
            layer for layer in self.layers if layer.kind is LayerKind.FC
        )

    def conv_layers(self) -> Tuple[LayerSpec, ...]:
        """Convolutional layers."""
        return tuple(
            layer for layer in self.layers if layer.kind is LayerKind.CONV
        )

    def layer(self, name: str) -> LayerSpec:
        """Look a layer up by name.

        Raises:
            KeyError: if no layer has that name.
        """
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"model {self.name!r} has no layer named {name!r}")

    def summary(self) -> str:
        """A human-readable multi-line summary, one line per parameter layer."""
        lines = [
            f"Model {self.name}: {self.total_params / 1e6:.1f}M parameters, "
            f"{self.num_layers} layers, dataset={self.dataset}, "
            f"batch={self.default_batch_size}"
        ]
        for layer in self.parameter_layers():
            lines.append(
                f"  {layer.name:<28s} {layer.kind.value:<6s} "
                f"params={layer.param_count:>12,d}  "
                f"fwd={layer.flops_forward / 1e6:10.1f} MFLOP/sample"
            )
        return "\n".join(lines)


def _conv_output_dim(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ModelSpecError(
            f"convolution collapses spatial dim: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


class SpecBuilder:
    """Incrementally build a :class:`ModelSpec`, tracking activation shapes.

    Example::

        b = SpecBuilder("toy", input_shape=(3, 32, 32))
        b.conv("conv1", out_channels=32, kernel=5, pad=2)
        b.relu("relu1")
        b.max_pool("pool1", kernel=2, stride=2)
        b.flatten("flat")
        b.fc("ip1", 10)
        spec = b.build(dataset="cifar10", default_batch_size=100)
    """

    def __init__(self, name: str, input_shape: Sequence[int]):
        if len(input_shape) not in (1, 3):
            raise ModelSpecError(
                f"input_shape must be (features,) or (channels, h, w), got {input_shape}"
            )
        self.name = name
        self._layers: List[LayerSpec] = [
            LayerSpec(
                name="data",
                kind=LayerKind.INPUT,
                output_shape=tuple(int(d) for d in input_shape),
            )
        ]
        self._shape: Tuple[int, ...] = tuple(int(d) for d in input_shape)

    # -- introspection ---------------------------------------------------------
    @property
    def current_shape(self) -> Tuple[int, ...]:
        """Per-sample shape of the activation produced by the last layer."""
        return self._shape

    def _require_spatial(self, op: str) -> Tuple[int, int, int]:
        if len(self._shape) != 3:
            raise ModelSpecError(
                f"{op} requires a (channels, h, w) activation, got {self._shape}"
            )
        return self._shape  # type: ignore[return-value]

    def _require_flat(self, op: str) -> int:
        if len(self._shape) != 1:
            raise ModelSpecError(
                f"{op} requires a flattened activation, got {self._shape}"
            )
        return self._shape[0]

    def _add(self, layer: LayerSpec) -> LayerSpec:
        self._layers.append(layer)
        self._shape = layer.output_shape
        return layer

    # -- layer constructors ----------------------------------------------------
    def conv(
        self,
        name: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        bias: bool = True,
    ) -> LayerSpec:
        """Append a 2-D convolution layer."""
        in_c, in_h, in_w = self._require_spatial("conv")
        out_h = _conv_output_dim(in_h, kernel, stride, pad)
        out_w = _conv_output_dim(in_w, kernel, stride, pad)
        weights = out_channels * in_c * kernel * kernel
        params = weights + (out_channels if bias else 0)
        # 2 FLOPs (multiply + add) per MAC; backward needs gradients w.r.t.
        # both inputs and weights, roughly twice the forward work.
        flops_fwd = 2.0 * weights * out_h * out_w
        flops_bwd = 2.0 * flops_fwd
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.CONV,
                param_count=params,
                param_shape=(out_channels, in_c, kernel, kernel),
                flops_forward=flops_fwd,
                flops_backward=flops_bwd,
                output_shape=(out_channels, out_h, out_w),
            )
        )

    def conv_rect(
        self,
        name: str,
        out_channels: int,
        kernel_h: int,
        kernel_w: int,
        stride: int = 1,
        pad_h: int = 0,
        pad_w: int = 0,
        bias: bool = True,
    ) -> LayerSpec:
        """Append a convolution with a rectangular kernel (e.g. 1x7, 7x1)."""
        in_c, in_h, in_w = self._require_spatial("conv_rect")
        out_h = _conv_output_dim(in_h, kernel_h, stride, pad_h)
        out_w = _conv_output_dim(in_w, kernel_w, stride, pad_w)
        weights = out_channels * in_c * kernel_h * kernel_w
        params = weights + (out_channels if bias else 0)
        flops_fwd = 2.0 * weights * out_h * out_w
        flops_bwd = 2.0 * flops_fwd
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.CONV,
                param_count=params,
                param_shape=(out_channels, in_c, kernel_h, kernel_w),
                flops_forward=flops_fwd,
                flops_backward=flops_bwd,
                output_shape=(out_channels, out_h, out_w),
            )
        )

    def fc(self, name: str, out_features: int, bias: bool = True) -> LayerSpec:
        """Append a fully-connected layer (``M`` inputs, ``N`` outputs)."""
        in_features = self._require_flat("fc")
        weights = in_features * out_features
        params = weights + (out_features if bias else 0)
        flops_fwd = 2.0 * weights
        flops_bwd = 2.0 * flops_fwd
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.FC,
                param_count=params,
                param_shape=(in_features, out_features),
                flops_forward=flops_fwd,
                flops_backward=flops_bwd,
                output_shape=(out_features,),
                sf_decomposable=True,
            )
        )

    def max_pool(self, name: str, kernel: int, stride: Optional[int] = None,
                 pad: int = 0) -> LayerSpec:
        """Append a max-pooling layer."""
        return self._pool(name, kernel, stride, pad)

    def avg_pool(self, name: str, kernel: int, stride: Optional[int] = None,
                 pad: int = 0) -> LayerSpec:
        """Append an average-pooling layer."""
        return self._pool(name, kernel, stride, pad)

    def global_avg_pool(self, name: str) -> LayerSpec:
        """Append a global average pooling layer collapsing spatial dims."""
        in_c, in_h, in_w = self._require_spatial("global_avg_pool")
        flops = float(in_c * in_h * in_w)
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.POOL,
                flops_forward=flops,
                flops_backward=flops,
                output_shape=(in_c, 1, 1),
            )
        )

    def _pool(self, name: str, kernel: int, stride: Optional[int], pad: int) -> LayerSpec:
        in_c, in_h, in_w = self._require_spatial("pool")
        stride = stride or kernel
        out_h = _conv_output_dim(in_h, kernel, stride, pad)
        out_w = _conv_output_dim(in_w, kernel, stride, pad)
        flops = float(in_c * out_h * out_w * kernel * kernel)
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.POOL,
                flops_forward=flops,
                flops_backward=flops,
                output_shape=(in_c, out_h, out_w),
            )
        )

    def relu(self, name: str) -> LayerSpec:
        """Append a ReLU activation."""
        count = float(_shape_numel(self._shape))
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.ACTIVATION,
                flops_forward=count,
                flops_backward=count,
                output_shape=self._shape,
            )
        )

    def batch_norm(self, name: str) -> LayerSpec:
        """Append a batch-normalisation layer (2 learned scalars per channel)."""
        if len(self._shape) == 3:
            channels = self._shape[0]
        else:
            channels = self._shape[0]
        count = float(_shape_numel(self._shape))
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.NORM,
                param_count=2 * channels,
                param_shape=(2, channels),
                flops_forward=4.0 * count,
                flops_backward=8.0 * count,
                output_shape=self._shape,
            )
        )

    def lrn(self, name: str) -> LayerSpec:
        """Append a local response normalisation layer (parameter free)."""
        count = float(_shape_numel(self._shape))
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.NORM,
                flops_forward=5.0 * count,
                flops_backward=5.0 * count,
                output_shape=self._shape,
            )
        )

    def dropout(self, name: str) -> LayerSpec:
        """Append a dropout layer."""
        count = float(_shape_numel(self._shape))
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.DROPOUT,
                flops_forward=count,
                flops_backward=count,
                output_shape=self._shape,
            )
        )

    def flatten(self, name: str) -> LayerSpec:
        """Flatten a spatial activation into a vector."""
        count = _shape_numel(self._shape)
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.FLATTEN,
                output_shape=(int(count),),
            )
        )

    def softmax(self, name: str) -> LayerSpec:
        """Append a softmax output layer."""
        count = float(_shape_numel(self._shape))
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.SOFTMAX,
                flops_forward=3.0 * count,
                flops_backward=count,
                output_shape=self._shape,
            )
        )

    # -- transformer layers ----------------------------------------------------
    def _require_tokens(self, op: str) -> Tuple[int, int]:
        if len(self._shape) != 2:
            raise ModelSpecError(
                f"{op} requires a (seq_len, channels) activation, got {self._shape}"
            )
        return self._shape  # type: ignore[return-value]

    def embedding(self, name: str, vocab_size: int, dim: int) -> LayerSpec:
        """Append a token-embedding lookup: ``(T,)`` int ids -> ``(T, dim)``.

        The table syncs as a dense ``vocab_size x dim`` blob (no sparse-push
        path), so its wire cost is its full parameter size.
        """
        seq_len = self._require_flat("embedding")
        params = int(vocab_size) * int(dim)
        count = float(seq_len * dim)
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.EMBED,
                param_count=params,
                param_shape=(int(vocab_size), int(dim)),
                flops_forward=count,
                flops_backward=2.0 * count,
                output_shape=(seq_len, int(dim)),
            )
        )

    def positional(self, name: str) -> LayerSpec:
        """Append a learned positional table added to a ``(T, C)`` activation."""
        seq_len, dim = self._require_tokens("positional")
        count = float(seq_len * dim)
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.EMBED,
                param_count=seq_len * dim,
                param_shape=(seq_len, dim),
                flops_forward=count,
                flops_backward=count,
                output_shape=self._shape,
            )
        )

    def layer_norm(self, name: str) -> LayerSpec:
        """Append a layer normalisation (2 learned scalars per channel)."""
        channels = self._shape[-1]
        count = float(_shape_numel(self._shape))
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.NORM,
                param_count=2 * channels,
                param_shape=(2, channels),
                flops_forward=4.0 * count,
                flops_backward=8.0 * count,
                output_shape=self._shape,
            )
        )

    def gelu(self, name: str) -> LayerSpec:
        """Append a GELU activation (tanh approximation)."""
        count = float(_shape_numel(self._shape))
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.ACTIVATION,
                flops_forward=8.0 * count,
                flops_backward=12.0 * count,
                output_shape=self._shape,
            )
        )

    def token_fc(self, name: str, out_features: int, bias: bool = True) -> LayerSpec:
        """Append a token-wise FC layer applied to a ``(T, C)`` activation.

        The ``C x out_features`` weight is shared across the ``T`` positions,
        so the layer is FC-shaped for scheme decisions (``fc_dims``,
        sufficient-factor decomposable) while its FLOPs scale with ``T``.
        Table-1 costing keeps ``K = batch`` (sequences, like images for CNN
        FC layers); see :mod:`repro.nn.model_zoo.transformer` for the
        token-level caveat.
        """
        seq_len, in_features = self._require_tokens("token_fc")
        weights = in_features * int(out_features)
        params = weights + (int(out_features) if bias else 0)
        flops_fwd = 2.0 * weights * seq_len
        flops_bwd = 2.0 * flops_fwd
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.FC,
                param_count=params,
                param_shape=(in_features, int(out_features)),
                flops_forward=flops_fwd,
                flops_backward=flops_bwd,
                output_shape=(seq_len, int(out_features)),
                sf_decomposable=True,
            )
        )

    def attention_core(self, name: str, num_heads: int) -> LayerSpec:
        """Append the parameter-free attention core: ``(T, 3C) -> (T, C)``.

        Consumes a fused QKV activation (from a preceding ``token_fc``) and
        models the ``QK^T`` / softmax / ``AV`` compute; the projections on
        either side carry the parameters, so only they become sync units.
        """
        seq_len, qkv_dim = self._require_tokens("attention_core")
        if qkv_dim % 3 != 0:
            raise ModelSpecError(
                f"attention_core {name!r}: QKV activation width {qkv_dim} "
                f"not divisible by 3"
            )
        dim = qkv_dim // 3
        if dim % int(num_heads) != 0:
            raise ModelSpecError(
                f"attention_core {name!r}: width {dim} not divisible by "
                f"{num_heads} heads"
            )
        matmul_flops = 4.0 * seq_len * seq_len * dim
        softmax_flops = 5.0 * int(num_heads) * seq_len * seq_len
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.ATTENTION,
                flops_forward=matmul_flops + softmax_flops,
                flops_backward=2.0 * (matmul_flops + softmax_flops),
                output_shape=(seq_len, dim),
            )
        )

    def residual(self, name: str) -> LayerSpec:
        """Append a residual add (skip connection merge point)."""
        count = float(_shape_numel(self._shape))
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.ADD,
                flops_forward=count,
                flops_backward=count,
                output_shape=self._shape,
            )
        )

    def transformer_block(self, prefix: str, num_heads: int,
                          mlp_ratio: int = 4) -> Tuple[LayerSpec, ...]:
        """Append a full pre-norm transformer block (10 layer records).

        The QKV / output / MLP projections are emitted as individual
        ``token_fc`` records so each enters Algorithm-1 scheme decisions on
        its own ``(M, N)`` shape, exactly like the FC layers of a CNN.
        """
        _, dim = self._require_tokens("transformer_block")
        specs = [
            self.layer_norm(f"{prefix}_ln1"),
            self.token_fc(f"{prefix}_attn_qkv", 3 * dim),
            self.attention_core(f"{prefix}_attn_core", num_heads),
            self.token_fc(f"{prefix}_attn_proj", dim),
            self.residual(f"{prefix}_res1"),
            self.layer_norm(f"{prefix}_ln2"),
            self.token_fc(f"{prefix}_mlp_fc", int(mlp_ratio) * dim),
            self.gelu(f"{prefix}_mlp_gelu"),
            self.token_fc(f"{prefix}_mlp_proj", dim),
            self.residual(f"{prefix}_res2"),
        ]
        return tuple(specs)

    def concat_channels(self, name: str, channel_counts: Iterable[int]) -> LayerSpec:
        """Record a channel concatenation (used by inception modules).

        The builder is sequential, so branch construction happens outside it;
        this call simply sets the resulting concatenated shape.
        """
        _, in_h, in_w = self._require_spatial("concat")
        total = sum(int(c) for c in channel_counts)
        return self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.CONCAT,
                output_shape=(total, in_h, in_w),
            )
        )

    def add_layer(self, layer: LayerSpec) -> LayerSpec:
        """Append an externally constructed :class:`LayerSpec` verbatim."""
        return self._add(layer)

    def set_shape(self, shape: Sequence[int]) -> None:
        """Override the tracked activation shape (for non-sequential topologies)."""
        self._shape = tuple(int(d) for d in shape)

    # -- finalisation ----------------------------------------------------------
    def build(
        self,
        dataset: str = "synthetic",
        default_batch_size: int = 32,
        reference_images_per_sec: Optional[float] = None,
        notes: str = "",
    ) -> ModelSpec:
        """Produce the immutable :class:`ModelSpec`."""
        return ModelSpec(
            name=self.name,
            layers=tuple(self._layers),
            dataset=dataset,
            default_batch_size=default_batch_size,
            reference_images_per_sec=reference_images_per_sec,
            notes=notes,
        )


def _shape_numel(shape: Tuple[int, ...]) -> int:
    """Number of elements in a per-sample activation shape."""
    count = 1
    for dim in shape:
        count *= int(dim)
    return count
