"""Sequential network container.

The container exposes exactly the structure Poseidon exploits: an ordered
list of layers whose backward passes run from the top of the network to the
bottom, with a callback fired after *each* layer's backward pass so a syncer
can start communicating that layer's gradient while lower layers are still
computing (wait-free backpropagation, Section 3.1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.loss import SoftmaxCrossEntropyLoss

#: Callback invoked after a layer's backward pass.  Arguments: the index of
#: the layer within the network and the layer object itself.
BackwardHook = Callable[[int, Layer], None]


class Network:
    """An ordered stack of layers trained with backpropagation."""

    def __init__(self, layers: Sequence[Layer], name: str = "network"):
        self.name = name
        self.layers: List[Layer] = list(layers)
        if not self.layers:
            raise ValueError("a Network needs at least one layer")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate layer names in network {name!r}: {names}")
        self.loss = SoftmaxCrossEntropyLoss()

    # -- introspection ----------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of layers in the stack."""
        return len(self.layers)

    def parameter_layers(self) -> List[Tuple[int, Layer]]:
        """Indices and layers that carry trainable parameters."""
        return [(i, layer) for i, layer in enumerate(self.layers) if layer.has_parameters]

    @property
    def param_count(self) -> int:
        """Total number of trainable scalars in the network."""
        return sum(layer.param_count for layer in self.layers)

    def layer_by_name(self, name: str) -> Layer:
        """Look up a layer by name.

        Raises:
            KeyError: if the layer does not exist.
        """
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"network {self.name!r} has no layer named {name!r}")

    # -- state ------------------------------------------------------------------
    def get_state(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Copy of all parameters, keyed by layer name then parameter name."""
        return {
            layer.name: layer.get_params()
            for layer in self.layers
            if layer.has_parameters
        }

    def set_state(self, state: Dict[str, Dict[str, np.ndarray]]) -> None:
        """Load parameters previously captured with :meth:`get_state`."""
        for layer_name, params in state.items():
            self.layer_by_name(layer_name).set_params(params)

    def get_gradients(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Copy of all parameter gradients, keyed by layer then parameter name."""
        return {
            layer.name: layer.get_grads()
            for layer in self.layers
            if layer.has_parameters
        }

    # -- execution ----------------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        """Run the forward pass and return the final activations (logits)."""
        activations = inputs
        for layer in self.layers:
            activations = layer.forward(activations, training=training)
        return activations

    def backward(self, grad_logits: np.ndarray,
                 hook: Optional[BackwardHook] = None) -> np.ndarray:
        """Run the backward pass from the loss gradient down to the input.

        Args:
            grad_logits: gradient of the loss w.r.t. the network output.
            hook: optional callback invoked right after each layer finishes
                its backward pass (top layer first) -- the WFBP insertion
                point of Algorithm 2 (``net.BackwardThrough(l)`` followed by
                ``thread_pool.Schedule(sync(l))``).

        Returns:
            Gradient with respect to the network input.
        """
        grad = grad_logits
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            grad = layer.backward(grad)
            if hook is not None:
                hook(index, layer)
        return grad

    def train_step(self, inputs: np.ndarray, labels: np.ndarray,
                   hook: Optional[BackwardHook] = None) -> float:
        """Forward + loss + backward for one mini-batch; returns the loss.

        Parameter gradients are left in each layer's ``grads`` dict; applying
        them is the optimiser's (or the parameter server's) job.
        """
        logits = self.forward(inputs, training=True)
        loss, grad_logits = self.loss.forward(logits, labels)
        self.backward(grad_logits, hook=hook)
        return loss

    def evaluate(self, inputs: np.ndarray, labels: np.ndarray,
                 batch_size: int = 256) -> Tuple[float, float]:
        """Compute mean loss and top-1 error over a dataset without training."""
        total_loss = 0.0
        total_err = 0.0
        count = 0
        for start in range(0, inputs.shape[0], batch_size):
            batch_x = inputs[start:start + batch_size]
            batch_y = labels[start:start + batch_size]
            logits = self.forward(batch_x, training=False)
            loss, _ = self.loss.forward(logits, batch_y)
            err = self.loss.error_rate(logits, batch_y)
            total_loss += loss * batch_x.shape[0]
            total_err += err * batch_x.shape[0]
            count += batch_x.shape[0]
        return total_loss / count, total_err / count

    def zero_grads(self) -> None:
        """Reset the gradients of every parameterised layer."""
        for layer in self.layers:
            if layer.has_parameters:
                layer.zero_grads()
