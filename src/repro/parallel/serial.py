"""Single-process reference trainers.

Two reference points are provided:

* :class:`SerialTrainer` -- ordinary single-replica SGD, the "1 node"
  baseline of every speedup figure.
* :func:`simulate_synchronous_sgd` -- an *exact* serial emulation of
  BSP data-parallel SGD: at every iteration it computes each worker's
  gradient on that worker's batch, averages them, and applies one update.
  The distributed trainer must produce bit-for-bit (up to float tolerance)
  the same parameters; the equivalence tests rely on this function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import TrainingConfig
from repro.data.samplers import BatchSampler
from repro.nn.network import Network
from repro.nn.optim import SGD


@dataclass
class SerialHistory:
    """Loss/error trace of a serial run."""

    losses: List[float] = field(default_factory=list)
    test_errors: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss of the last recorded iteration."""
        return self.losses[-1] if self.losses else float("nan")


class SerialTrainer:
    """Plain single-node SGD training loop."""

    def __init__(self, network: Network, train_data: Tuple[np.ndarray, np.ndarray],
                 training: TrainingConfig,
                 test_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                 eval_every: int = 0):
        self.network = network
        self.train_images, self.train_labels = train_data
        self.test_data = test_data
        self.training = training
        self.eval_every = int(eval_every)
        self.optimizer = SGD(
            learning_rate=training.learning_rate,
            momentum=training.momentum,
            weight_decay=training.weight_decay,
        )
        self.sampler = BatchSampler(
            num_samples=self.train_images.shape[0],
            batch_size=training.batch_size,
            seed=training.seed,
        )

    def train(self, iterations: Optional[int] = None) -> SerialHistory:
        """Run SGD for the configured number of iterations."""
        iterations = iterations if iterations is not None else self.training.iterations
        history = SerialHistory()
        for step in range(iterations):
            indices = self.sampler.next_batch()
            loss = self.network.train_step(
                self.train_images[indices], self.train_labels[indices])
            self.optimizer.step_network(self.network)
            history.losses.append(loss)
            if (self.eval_every and self.test_data is not None
                    and (step + 1) % self.eval_every == 0):
                _, error = self.network.evaluate(*self.test_data)
                history.test_errors.append((step + 1, error))
        return history


def simulate_synchronous_sgd(
        network: Network,
        worker_batches: Callable[[int, int], Sequence[Tuple[np.ndarray, np.ndarray]]],
        num_workers: int,
        iterations: int,
        training: TrainingConfig,
        aggregation: str = "mean") -> List[float]:
    """Serially emulate BSP data-parallel SGD.

    Args:
        network: the single "global" model, updated in place.
        worker_batches: callable ``(iteration, worker_id) -> (images, labels)``
            returning the batch each worker would draw; the distributed
            trainer uses the same callable so the two runs see identical data.
        num_workers: number of emulated workers.
        iterations: number of iterations to run.
        training: hyper-parameters (learning rate, momentum, ...).
        aggregation: ``"mean"`` or ``"sum"`` of worker gradients, matching the
            parameter server's setting.

    Returns:
        Per-iteration mean loss across emulated workers.
    """
    optimizer = SGD(
        learning_rate=training.learning_rate,
        momentum=training.momentum,
        weight_decay=training.weight_decay,
    )
    losses: List[float] = []
    for step in range(iterations):
        accumulated: Dict[str, Dict[str, np.ndarray]] = {}
        step_losses = []
        for worker_id in range(num_workers):
            images, labels = worker_batches(step, worker_id)
            loss = network.train_step(images, labels)
            step_losses.append(loss)
            for layer_name, grads in network.get_gradients().items():
                bucket = accumulated.setdefault(layer_name, {})
                for key, grad in grads.items():
                    if key in bucket:
                        bucket[key] = bucket[key] + grad
                    else:
                        bucket[key] = grad.copy()
        scale = 1.0 / num_workers if aggregation == "mean" else 1.0
        for layer_name, grads in accumulated.items():
            layer = network.layer_by_name(layer_name)
            for key, grad in grads.items():
                optimizer.apply(f"{layer_name}/{key}", layer.params[key], grad * scale)
        losses.append(float(np.mean(step_losses)))
    return losses
