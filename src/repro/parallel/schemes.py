"""Scheme assignment for runnable networks.

The coordinator's cost model (:mod:`repro.core.cost_model`) operates on
:class:`~repro.nn.spec.LayerSpec` objects; the functional trainer operates on
runnable :class:`~repro.nn.layers.base.Layer` objects.  This module bridges
the two: it applies the same Algorithm-1 decision rule to the Dense layers
of a runnable network and produces a per-layer scheme assignment the trainer
can hand to its syncers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.cost_model import (
    CommScheme,
    ps_combined_cost,
    sfb_worker_cost,
)
from repro.exceptions import ConfigurationError
from repro.nn.layers.dense import Dense
from repro.nn.network import Network

#: Synchronization modes accepted by the functional trainer.
TRAINER_MODES = ("ps", "sfb", "hybrid", "onebit", "adam")


@dataclass(frozen=True)
class SchemeAssignment:
    """Scheme chosen for every parameter layer of a runnable network."""

    mode: str
    schemes: Dict[str, CommScheme]

    def scheme_for(self, layer_name: str) -> CommScheme:
        """Scheme assigned to a layer (PS for unknown layers)."""
        return self.schemes.get(layer_name, CommScheme.PS)

    @property
    def sfb_layers(self) -> List[str]:
        """Layers synchronized by sufficient-factor broadcasting."""
        return [name for name, scheme in self.schemes.items()
                if scheme is CommScheme.SFB]


def assign_schemes(network: Network, mode: str, num_workers: int,
                   num_servers: int, batch_size: int) -> SchemeAssignment:
    """Assign a communication scheme to every parameter layer.

    Args:
        network: the runnable model replica (its Dense layers expose shapes).
        mode: one of ``"ps"``, ``"sfb"``, ``"hybrid"``, ``"onebit"``,
            ``"adam"``.  ``"sfb"``/``"adam"`` fall back to PS for layers
            whose gradients are not sufficient-factor decomposable.
        num_workers: worker count (``P1``).
        num_servers: PS shard count (``P2``).
        batch_size: per-worker batch size (``K``).

    Raises:
        ConfigurationError: on an unknown mode.
    """
    if mode not in TRAINER_MODES:
        raise ConfigurationError(
            f"unknown trainer mode {mode!r}; expected one of {TRAINER_MODES}"
        )
    schemes: Dict[str, CommScheme] = {}
    for _, layer in network.parameter_layers():
        is_dense = isinstance(layer, Dense)
        if mode == "ps":
            scheme = CommScheme.PS
        elif mode == "onebit":
            scheme = CommScheme.ONEBIT
        elif mode == "sfb":
            scheme = CommScheme.SFB if is_dense else CommScheme.PS
        elif mode == "adam":
            scheme = CommScheme.ADAM if is_dense else CommScheme.PS
        else:  # hybrid: Algorithm 1
            scheme = CommScheme.PS
            if is_dense and num_workers > 1:
                m, n = layer.in_features, layer.out_features
                sfb = sfb_worker_cost(m, n, batch_size, num_workers)
                ps = ps_combined_cost(m, n, num_workers, num_servers)
                if sfb <= ps:
                    scheme = CommScheme.SFB
        schemes[layer.name] = scheme
    return SchemeAssignment(mode=mode, schemes=schemes)
