"""Scheme assignment for runnable networks.

The coordinator's cost model (:mod:`repro.core.cost_model`) operates on
:class:`~repro.nn.spec.LayerSpec` objects; the functional trainer operates on
runnable :class:`~repro.nn.layers.base.Layer` objects.  This module bridges
the two: it resolves the requested mode through the communication-backend
registry (:mod:`repro.comm.backend`) -- applying the same Algorithm-1
decision rule for ``"hybrid"`` -- and produces a per-layer scheme assignment
the trainer hands to its syncers.  A newly registered backend becomes a
valid trainer mode without any change here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.comm.backend import get_backend, hybrid_choice, registered_backends
from repro.core.cost_model import CommScheme, NetworkTopology
from repro.exceptions import ConfigurationError
from repro.nn.layers.dense import Dense
from repro.nn.network import Network

#: The per-layer Algorithm-1 mode; every registered backend name is also a mode.
HYBRID_MODE = "hybrid"


def trainer_modes() -> Tuple[str, ...]:
    """Synchronization modes accepted by the functional trainer."""
    return tuple(registered_backends()) + (HYBRID_MODE,)


@dataclass(frozen=True)
class SchemeAssignment:
    """Scheme chosen for every parameter layer of a runnable network."""

    mode: str
    schemes: Dict[str, CommScheme]

    def scheme_for(self, layer_name: str) -> CommScheme:
        """Scheme assigned to a layer (PS for unknown layers)."""
        return self.schemes.get(layer_name, CommScheme.PS)

    @property
    def sfb_layers(self) -> List[str]:
        """Layers synchronized by sufficient-factor broadcasting."""
        return [name for name, scheme in self.schemes.items()
                if scheme is CommScheme.SFB]


def assign_schemes(network: Network, mode: str, num_workers: int,
                   num_servers: int, batch_size: int,
                   topology: Optional[NetworkTopology] = None
                   ) -> SchemeAssignment:
    """Assign a communication scheme to every parameter layer.

    Args:
        network: the runnable model replica (its Dense layers expose shapes).
        mode: a registered backend name (``"ps"``, ``"sfb"``, ``"onebit"``,
            ``"adam"``, ``"ring"``, ``"hierps"``, ...) or ``"hybrid"``.
            Factor-based backends fall back to PS for layers whose gradients
            are not sufficient-factor decomposable.
        num_workers: worker count (``P1``).
        num_servers: PS shard count (``P2``).
        batch_size: per-worker batch size (``K``).
        topology: rack topology for rack-aware ``"hybrid"`` decisions
            (``None`` or a flat topology keeps the paper's flat Algorithm 1).

    Raises:
        ConfigurationError: on an unknown mode or a degenerate cluster /
            batch configuration.
    """
    if num_workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1, got {num_servers}")
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    modes = trainer_modes()
    if mode not in modes:
        raise ConfigurationError(
            f"unknown trainer mode {mode!r}; expected one of {modes}"
        )
    backend = get_backend(mode) if mode != HYBRID_MODE else None
    schemes: Dict[str, CommScheme] = {}
    for _, layer in network.parameter_layers():
        # Dense layers are exactly the runnable layers whose gradients admit
        # a sufficient-factor decomposition (outer product of activations
        # and back-propagated errors).
        factorizable = isinstance(layer, Dense)
        if backend is None:  # hybrid: Algorithm 1 through the registry
            if factorizable:
                scheme = hybrid_choice(layer.in_features, layer.out_features,
                                       num_workers, num_servers, batch_size,
                                       sf_eligible=True, topology=topology)
            else:
                scheme = CommScheme.PS
        elif backend.requires_factorization and not factorizable:
            scheme = CommScheme.PS
        else:
            scheme = backend.scheme
        schemes[layer.name] = scheme
    return SchemeAssignment(mode=mode, schemes=schemes)
