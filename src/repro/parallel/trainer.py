"""The functional distributed trainer.

One thread per worker runs the loop of Algorithm 2: forward pass, backward
pass with a per-layer hook that schedules the layer's syncer job on the
worker's WFBP thread pool, then a wait for all syncers and a policy-driven
end-of-step gate.  Gradients flow through the functional substrates of
:mod:`repro.comm` exactly as they would over the network.

The gate is where execution semantics live
(:class:`~repro.core.policy.SyncPolicy`): BSP (and its degenerate
equivalents ssp(0) / local_sgd(1)) rendezvous at the classic barrier;
SSP with s > 0 advances a per-worker :class:`~repro.core.staleness.SSPClock`
that only blocks a worker more than ``s`` iterations ahead of the slowest;
async never blocks; local SGD with H > 1 has no per-iteration gate at all --
the H-periodic parameter-averaging round is its rendezvous.  Under
``deterministic=True`` the relaxed policies (ssp s>0, async) run a
serialized round-robin schedule, so their thread interleaving is
reproducible run-to-run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.comm.averaging import ParameterAverager
from repro.comm.backend import TrainerContext, WorkerResources, get_backend
from repro.comm.bucketing import GradientBucketer
from repro.comm.compression import make_compressor
from repro.comm.quantization import OneBitQuantizer
from repro.comm.wire import CompressionConfig
from repro.config import TrainingConfig
from repro.core.consistency import BSPController
from repro.core.cost_model import CommScheme
from repro.core.faults import FailureDetector, FaultInjector, FaultPlan
from repro.core.policy import SyncPolicy
from repro.core.staleness import SSPClock
from repro.core.syncer import Syncer
from repro.core.wfbp import DeterministicScheduler, ScheduleMode, WFBPScheduler
from repro.data.samplers import BatchSampler
from repro.exceptions import (
    ConfigurationError,
    RecoveryError,
    TrainingError,
    TransientFault,
    WorkerFailure,
)
from repro.nn.network import Network
from repro.nn.optim import SGD
from repro.parallel.schemes import SchemeAssignment, assign_schemes

#: Recognised crash-recovery modes (validated against backend capabilities).
RECOVERY_MODES: Tuple[str, ...] = ("none", "restart", "drop")

#: ``(iteration, worker_id) -> (images, labels)``
BatchProvider = Callable[[int, int], Tuple[np.ndarray, np.ndarray]]


@dataclass
class TrainingHistory:
    """Everything a distributed training run records."""

    losses: List[float] = field(default_factory=list)
    per_worker_losses: List[List[float]] = field(default_factory=list)
    test_errors: List[Tuple[int, float]] = field(default_factory=list)
    bytes_sent: int = 0
    bytes_received: int = 0
    iterations: int = 0
    mode: str = ""
    num_workers: int = 0
    policy: str = "bsp"

    @property
    def total_bytes(self) -> int:
        """Total bytes across all workers and directions."""
        return self.bytes_sent + self.bytes_received

    @property
    def final_loss(self) -> float:
        """Mean worker loss of the last iteration."""
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_test_error(self) -> float:
        """Most recent recorded test error (NaN if never evaluated)."""
        return self.test_errors[-1][1] if self.test_errors else float("nan")


@dataclass
class TrainerCheckpoint:
    """A consistent cut of the whole training job (restart recovery).

    Captured at a step boundary where no sync is in flight -- inside the
    BSP barrier release (all other workers parked) or between rounds of
    the serialized relaxed-policy loop -- so every piece is from the same
    logical instant: the replicas, their local optimizer / quantizer /
    sampler state, the substrates' global state (including server-side
    optimizer state) and the SSP clock vector.
    """

    step: int
    replica_states: List[Dict[str, Dict[str, np.ndarray]]]
    optimizer_states: List[Dict[str, np.ndarray]]
    quantizer_states: List[dict]
    sampler_states: List[Optional[dict]]
    substrate_snapshots: Dict[CommScheme, Any]
    clock_snapshot: Optional[Dict[int, int]] = None
    #: Per-worker pluggable-compressor state (error-feedback residuals,
    #: PowerSGD factors); empty dicts when no compressor is configured.
    compressor_states: List[dict] = field(default_factory=list)


class _WorkerRuntime:
    """Per-worker state: the model replica, its syncers and its scheduler."""

    def __init__(self, worker_id: int, network: Network, syncers: Dict[str, Syncer],
                 scheduler: WFBPScheduler, sampler: Optional[BatchSampler],
                 resources: WorkerResources):
        self.worker_id = worker_id
        self.network = network
        self.syncers = syncers
        self.scheduler = scheduler
        self.sampler = sampler
        self.resources = resources
        self.losses: List[float] = []


class DistributedTrainer:
    """Data-parallel BSP trainer over in-process workers.

    Args:
        network_factory: builds one model replica; must be deterministic so
            all replicas (and the global parameter-server copy) start equal.
        num_workers: number of worker replicas.
        train_shards: per-worker ``(images, labels)`` partitions; may be
            ``None`` when a ``batch_provider`` is given.
        training: hyper-parameters.
        mode: communication mode -- any registered backend name (``"ps"``,
            ``"sfb"``, ``"onebit"``, ``"adam"``, ``"ring"``, ``"hierps"``,
            ...) or ``"hybrid"`` (per-layer Algorithm 1).
        schedule: WFBP (overlapped) or sequential synchronization.
        num_servers: PS shard count used by the hybrid cost model.
        test_data: optional held-out set for periodic evaluation.
        eval_every: evaluate every N iterations (0 disables).
        batch_provider: overrides shard-based sampling with an explicit
            ``(iteration, worker) -> batch`` callable (used by equivalence
            tests).
        aggregation: ``"mean"`` or ``"sum"`` gradient aggregation.
        sync_timeout: per-operation timeout guarding against deadlocks;
            plumbed into every policy wait (syncer drains, BSP barrier,
            SSP clock advances, averaging rounds).
        deterministic: make the run bit-reproducible: syncer jobs drain in
            submission order (:class:`DeterministicScheduler`), every
            aggregation substrate reduces gradients in worker-id order
            instead of thread-arrival order, and relaxed-consistency
            policies (ssp s>0, async) run a serialized round-robin
            schedule instead of free-running threads.
        policy: execution semantics -- a :class:`SyncPolicy` or its string
            form (``"bsp"``, ``"ssp(2)"``, ``"async"``, ``"local_sgd(4)"``).
            Every backend named by ``mode`` must declare support for the
            policy's kind in its ``sync_semantics``.  The degenerate
            policies ssp(0) and local_sgd(1) run the exact BSP path, so
            they are bit-identical to ``"bsp"`` under ``deterministic``.
        fault_plan: deterministic fault schedule
            (:class:`~repro.core.faults.FaultPlan`); ``None`` (default)
            leaves every injection hook a zero-cost no-op.
        recovery: what to do when a worker dies -- ``"none"`` (fail the
            run), ``"restart"`` (restore everything from the latest
            checkpoint and replay; exact, parameters match the fault-free
            run), or ``"drop"`` (excise the dead worker; the parameter
            server renormalizes aggregation to a P-1 mean).  Every backend
            in play must declare the mode in its ``fault_modes``;
            collectives reject ``"drop"`` at construction.
        checkpoint_interval: iterations between periodic checkpoints under
            restart recovery (0 = only the implicit step-0 checkpoint).
        retry_limit: bounded retries for transient sync failures before a
            worker is declared dead.
        retry_backoff: base seconds of the exponential retry backoff.
        compressor: pluggable gradient compressor spec for dense-gradient
            backends (``"none"``, ``"onebit"``, ``"topk(K)"``,
            ``"powersgd(R)"``); lossy push at the compressed wire size,
            dense pull.  The configured mode (or, under ``"hybrid"``, each
            layer's chosen backend) must have a dense-gradient path.
        bucket_bytes: fuse per-layer sync jobs of bucketable schemes into
            combined scheduler jobs of this many dense-gradient bytes
            (flushed the moment the bucket fills during backprop); ``None``
            keeps per-layer jobs.
    """

    def __init__(self,
                 network_factory: Callable[[], Network],
                 num_workers: int,
                 train_shards: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]],
                 training: TrainingConfig,
                 mode: str = "hybrid",
                 schedule: ScheduleMode = ScheduleMode.WFBP,
                 num_servers: Optional[int] = None,
                 test_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                 eval_every: int = 0,
                 batch_provider: Optional[BatchProvider] = None,
                 aggregation: str = "mean",
                 sync_timeout: float = 60.0,
                 deterministic: bool = False,
                 policy: Union[SyncPolicy, str, None] = "bsp",
                 fault_plan: Optional[FaultPlan] = None,
                 recovery: str = "none",
                 checkpoint_interval: int = 0,
                 retry_limit: int = 3,
                 retry_backoff: float = 0.001,
                 compressor: str = "none",
                 bucket_bytes: Optional[int] = None):
        if num_workers < 1:
            raise TrainingError(f"num_workers must be >= 1, got {num_workers}")
        if train_shards is None and batch_provider is None:
            raise TrainingError("either train_shards or batch_provider is required")
        if train_shards is not None and len(train_shards) != num_workers:
            raise TrainingError(
                f"expected {num_workers} shards, got {len(train_shards)}"
            )
        self.num_workers = int(num_workers)
        self.num_servers = int(num_servers) if num_servers else self.num_workers
        self.training = training
        self.mode = mode
        self.schedule = ScheduleMode(schedule)
        self.test_data = test_data
        self.eval_every = int(eval_every)
        self.aggregation = aggregation
        self.sync_timeout = float(sync_timeout)
        self.deterministic = bool(deterministic)
        self.policy = SyncPolicy.parse(policy)
        self._external_provider = batch_provider
        self._train_shards = train_shards

        # Fault tolerance knobs.  The defaults keep the fault-free path
        # byte-identical to the pre-fault-tolerance trainer: no injector,
        # no detector, no checkpoints, no extra work in the hot loop.
        self.fault_plan = fault_plan
        self.recovery = str(recovery)
        if self.recovery not in RECOVERY_MODES:
            raise TrainingError(
                f"unknown recovery mode {recovery!r}; "
                f"expected one of {RECOVERY_MODES}")
        self.checkpoint_interval = int(checkpoint_interval)
        if self.checkpoint_interval < 0:
            raise TrainingError(
                f"checkpoint_interval must be >= 0, got {checkpoint_interval}")
        if retry_limit < 0 or retry_backoff < 0:
            raise TrainingError(
                "retry_limit and retry_backoff must be >= 0, got "
                f"{retry_limit} / {retry_backoff}")
        self.retry_limit = int(retry_limit)
        self.retry_backoff = float(retry_backoff)

        # Wire axes: the compressor spec is parsed (and rejected) up front;
        # worker-local compressor instances are built in _build_worker.
        parsed = CompressionConfig.parse(compressor)
        self.compressor_spec: Optional[str] = (
            None if parsed.is_identity else str(compressor))
        self.bucket_bytes = None if bucket_bytes is None else int(bucket_bytes)
        if self.bucket_bytes is not None and self.bucket_bytes < 1:
            raise ConfigurationError(
                f"bucket_bytes must be >= 1, got {bucket_bytes}")
        if self.compressor_spec is not None and mode != "hybrid":
            backend = get_backend(mode)
            if not backend.supports_compression(parsed):
                raise ConfigurationError(
                    f"mode {mode!r} has no dense-gradient path for "
                    f"compressor {compressor!r}; compressible backends "
                    f"carry dense gradients (ps, ring)")
        if self.recovery == "drop" and not self.policy.is_bsp_equivalent:
            raise TrainingError(
                f"drop-dead-worker recovery needs a BSP-equivalent policy "
                f"(the survivors' rendezvous is what renormalizes to P-1); "
                f"got {self.policy}")
        if (self.recovery == "restart" and self.checkpoint_interval
                and self.policy.averages_parameters):
            raise TrainingError(
                "periodic checkpoints need a per-iteration rendezvous to cut "
                f"at; local SGD (H > 1) has none -- got {self.policy}")
        if (self.recovery == "restart" and self.checkpoint_interval
                and self.policy.relaxed_consistency and not self.deterministic):
            raise TrainingError(
                "periodic checkpoints under a relaxed policy need the "
                "serialized deterministic schedule (free-running workers "
                "have no consistent cut); pass deterministic=True")

        # Build replicas (identical initial weights by construction).
        self._replicas = [network_factory() for _ in range(self.num_workers)]
        reference = self._replicas[0]
        self.assignment: SchemeAssignment = assign_schemes(
            reference, mode, self.num_workers, self.num_servers, training.batch_size)

        # Every substrate in play must be able to run the policy and the
        # configured recovery mode (collectives reject "drop": a ring or
        # bulletin board has no server that could renormalize to P-1).
        for scheme in sorted({s for s in self.assignment.schemes.values()},
                             key=lambda s: s.value):
            backend = get_backend(scheme)
            if not backend.supports_policy(self.policy):
                raise TrainingError(
                    f"backend {scheme.value!r} cannot run under policy "
                    f"{self.policy} (supported semantics: "
                    f"{backend.sync_semantics})"
                )
            if not backend.supports_fault_mode(self.recovery):
                raise TrainingError(
                    f"backend {scheme.value!r} cannot run recovery mode "
                    f"{self.recovery!r} (supported fault modes: "
                    f"{backend.fault_modes})"
                )

        # Policy state: the shared parameter averager (local SGD) and the
        # per-worker SSP clock (ssp s>0, async -- where the bound is None).
        self._averager = (ParameterAverager(self.num_workers)
                          if self.policy.averages_parameters else None)
        self.clock: Optional[SSPClock] = None
        if self.policy.relaxed_consistency:
            self.clock = SSPClock(self.num_workers, staleness=self.policy.bound,
                                  default_timeout=self.sync_timeout)

        # Global state holders: one substrate per scheme present in the
        # assignment, built by that scheme's registered backend.
        self._backend_context = TrainerContext(
            num_workers=self.num_workers,
            num_servers=self.num_servers,
            batch_size=training.batch_size,
            aggregation=aggregation,
            deterministic=self.deterministic,
            optimizer_factory=self._make_optimizer,
            policy=self.policy,
            averager=self._averager,
            sync_timeout=self.sync_timeout,
        )
        initial_state = reference.get_state()
        layers_by_scheme: Dict[CommScheme, Dict[str, Dict[str, np.ndarray]]] = {}
        for name, params in initial_state.items():
            scheme = self.assignment.scheme_for(name)
            layers_by_scheme.setdefault(scheme, {})[name] = params
        self._substrates: Dict[CommScheme, Any] = {
            scheme: get_backend(scheme).build_substrate(layers,
                                                        self._backend_context)
            for scheme, layers in layers_by_scheme.items()
        }

        self._param_layer_names = [name for name in initial_state]
        self.bsp = BSPController(self.num_workers, self._param_layer_names)
        self._workers = [self._build_worker(w) for w in range(self.num_workers)]
        self._errors: List[BaseException] = []
        self._error_lock = threading.Lock()

        # Fault-tolerance runtime: the injector realizes the plan, the
        # detector tracks heartbeats and fans an abort out to every
        # blocking sync primitive so a dead peer fails the run instead of
        # hanging it.  Both are None on the default fault-free path.
        self._injector = (FaultInjector(fault_plan)
                          if fault_plan is not None else None)
        self._detector: Optional[FailureDetector] = None
        if self._injector is not None or self.recovery != "none":
            self._detector = FailureDetector(self.num_workers,
                                             lease_seconds=self.sync_timeout)
            self._detector.register(self.bsp)
            if self.clock is not None:
                self._detector.register(self.clock)
            if self._averager is not None:
                self._detector.register(self._averager)
            for substrate in self._substrates.values():
                self._detector.register(substrate)
        self._checkpoint: Optional[TrainerCheckpoint] = None
        self._dropped_workers: Set[int] = set()
        self.recoveries = 0

    # -- construction helpers ---------------------------------------------------
    def _make_optimizer(self) -> SGD:
        return SGD(
            learning_rate=self.training.learning_rate,
            momentum=self.training.momentum,
            weight_decay=self.training.weight_decay,
        )

    def substrate(self, scheme: CommScheme) -> Optional[Any]:
        """The shared communication substrate of one scheme (None if absent)."""
        return self._substrates.get(CommScheme(scheme))

    @property
    def parameter_server(self) -> Optional[Any]:
        """The dense (or quantized) PS substrate, when one is in play."""
        return (self._substrates.get(CommScheme.PS)
                or self._substrates.get(CommScheme.ONEBIT))

    @property
    def broadcaster(self) -> Optional[Any]:
        """The SFB bulletin board, when one is in play."""
        return self._substrates.get(CommScheme.SFB)

    @property
    def adam_server(self) -> Optional[Any]:
        """The Adam SF server, when one is in play."""
        return self._substrates.get(CommScheme.ADAM)

    def _build_worker(self, worker_id: int) -> _WorkerRuntime:
        network = self._replicas[worker_id]
        resources = WorkerResources(
            worker_id=worker_id,
            local_optimizer=self._make_optimizer(),
            quantizer=OneBitQuantizer(),
            # Worker-local instance: error-feedback residuals and PowerSGD
            # factors are per-replica state, like the 1-bit quantizer's.
            compressor=make_compressor(self.compressor_spec),
        )
        syncers: Dict[str, Syncer] = {}
        for _, layer in network.parameter_layers():
            scheme = self.assignment.scheme_for(layer.name)
            backend = get_backend(scheme)
            syncers[layer.name] = backend.create_syncer(
                layer, self._substrates[scheme], resources,
                self._backend_context)
        scheduler = self._make_scheduler()
        sampler = None
        if self._train_shards is not None:
            shard_x, _ = self._train_shards[worker_id]
            sampler = BatchSampler(
                num_samples=shard_x.shape[0],
                batch_size=self.training.batch_size,
                seed=self.training.seed + worker_id,
            )
        return _WorkerRuntime(worker_id, network, syncers, scheduler, sampler,
                              resources)

    def _make_scheduler(self) -> WFBPScheduler:
        if self.deterministic and self.schedule is ScheduleMode.WFBP:
            return DeterministicScheduler()
        return WFBPScheduler(mode=self.schedule, num_threads=2)

    # -- batch access ----------------------------------------------------------------
    def _batch(self, iteration: int, worker_id: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._external_provider is not None:
            return self._external_provider(iteration, worker_id)
        assert self._train_shards is not None
        runtime = self._workers[worker_id]
        assert runtime.sampler is not None
        indices = runtime.sampler.next_batch()
        shard_x, shard_y = self._train_shards[worker_id]
        return shard_x[indices], shard_y[indices]

    # -- training ---------------------------------------------------------------------
    def train(self, iterations: Optional[int] = None) -> TrainingHistory:
        """Run the distributed training loop and return its history.

        Under ``recovery="restart"`` the loop is supervised: an implicit
        step-0 checkpoint is taken before any thread starts (plus periodic
        ones every ``checkpoint_interval`` iterations), and when a worker
        dies the run restores every replica, substrate and sampler from
        the latest checkpoint and replays from its step.  Because crashes
        fire exactly once and injection never touches numerics, the
        recovered run's parameters are bit-identical to a fault-free run
        under ``deterministic=True``.  Under ``recovery="drop"`` the dead
        worker is excised instead: the survivors renormalize aggregation
        to a P-1 mean and finish without it.
        """
        iterations = iterations if iterations is not None else self.training.iterations
        history = TrainingHistory(
            mode=self.mode, num_workers=self.num_workers, iterations=iterations,
            policy=str(self.policy))
        if iterations == 0:
            return history
        per_worker_losses: List[List[float]] = [[] for _ in range(self.num_workers)]
        eval_records: List[Tuple[int, float]] = []

        if self.recovery == "restart":
            self._take_checkpoint(0)
            if self.checkpoint_interval and not self.policy.relaxed_consistency \
                    and not self.policy.averages_parameters:
                interval = self.checkpoint_interval

                def _barrier_checkpoint() -> None:
                    # Runs in the last arriver's thread while every other
                    # worker is parked inside the barrier: a consistent cut.
                    completed = self.bsp.iterations_completed + 1
                    if completed % interval == 0 and completed < iterations:
                        self._take_checkpoint(completed)

                self.bsp.on_release = _barrier_checkpoint

        start = 0
        while True:
            self._run_attempt(start, iterations, per_worker_losses, eval_records)
            if not self._errors:
                break
            failure = self._primary_failure()
            if (self.recovery != "restart"
                    or not isinstance(failure, WorkerFailure)
                    or self._checkpoint is None):
                raise TrainingError(
                    f"distributed training failed: {self._errors[0]}"
                ) from self._errors[0]
            self.recoveries += 1
            if self.recoveries > self._max_recoveries():
                raise RecoveryError(
                    f"gave up after {self.recoveries - 1} restart attempts; "
                    f"last failure: {failure}") from failure
            self._restore_from_checkpoint(per_worker_losses, eval_records)
            self._errors = []
            start = self._checkpoint.step

        history.per_worker_losses = per_worker_losses
        # Mean over the workers that reached iteration t -- ragged under
        # drop-dead-worker recovery, rectangular otherwise.
        history.losses = []
        for t in range(iterations):
            values = [losses[t] for losses in per_worker_losses
                      if len(losses) > t]
            history.losses.append(
                float(np.mean(values)) if values else float("nan"))
        history.test_errors = sorted(eval_records)
        for runtime in self._workers:
            for syncer in runtime.syncers.values():
                history.bytes_sent += syncer.stats.bytes_sent
                history.bytes_received += syncer.stats.bytes_received
        return history

    def _run_attempt(self, start: int, iterations: int,
                     per_worker_losses: List[List[float]],
                     eval_records: List[Tuple[int, float]]) -> None:
        """One supervised run of the worker loops from ``start``."""
        if self.deterministic and self.policy.relaxed_consistency:
            # Relaxed policies are nondeterministic precisely because their
            # workers interleave freely; a serialized round-robin schedule
            # is the reproducible representative of that interleaving.
            self._serialized_loop(start, iterations, per_worker_losses,
                                  eval_records)
        else:
            threads = [
                threading.Thread(
                    target=self._worker_loop,
                    args=(worker_id, start, iterations, per_worker_losses,
                          eval_records),
                    name=f"worker-{worker_id}",
                    daemon=True,
                )
                for worker_id in range(self.num_workers)
                if worker_id not in self._dropped_workers
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

    def _worker_loop(self, worker_id: int, start: int, iterations: int,
                     per_worker_losses: List[List[float]],
                     eval_records: List[Tuple[int, float]]) -> None:
        runtime = self._workers[worker_id]
        try:
            for step in range(start, iterations):
                self._worker_step(worker_id, step, per_worker_losses,
                                  eval_records)
                self._end_of_step(worker_id)
        except WorkerFailure as exc:
            if (self.recovery == "drop" and not exc.cascade
                    and exc.worker_id == worker_id):
                # This worker died: excise it so the survivors renormalize
                # to a P-1 mean instead of waiting for the ghost.
                self._drop_worker(worker_id)
            else:
                self._record_failure(worker_id, exc)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            self._record_failure(worker_id, exc)
        finally:
            runtime.scheduler.shutdown()

    def _serialized_loop(self, start: int, iterations: int,
                         per_worker_losses: List[List[float]],
                         eval_records: List[Tuple[int, float]]) -> None:
        """Deterministic driver for relaxed policies: round-robin steps.

        Worker 0 runs step ``t``, then worker 1, ... -- one fixed
        serialization of the asynchronous schedule.  Each worker's clock
        still advances through the policy gate, so the SSP invariant is
        exercised (and never blocks: the round-robin lag is at most 1).
        Restart checkpoints are cut between rounds, where no worker has
        anything in flight.
        """
        try:
            for step in range(start, iterations):
                for worker_id in range(self.num_workers):
                    self._worker_step(worker_id, step, per_worker_losses,
                                      eval_records)
                    self._end_of_step(worker_id)
                if (self.recovery == "restart" and self.checkpoint_interval
                        and (step + 1) % self.checkpoint_interval == 0
                        and step + 1 < iterations):
                    self._take_checkpoint(step + 1)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            with self._error_lock:
                self._errors.append(exc)
        finally:
            for runtime in self._workers:
                runtime.scheduler.shutdown()

    def _record_failure(self, worker_id: int, exc: BaseException) -> None:
        """Collect a worker's failure and fan the abort out to its peers."""
        with self._error_lock:
            self._errors.append(exc)
        if self._detector is None:
            return
        if isinstance(exc, WorkerFailure) and exc.cascade:
            return  # secondary: somebody already ran the fan-out
        self._detector.mark_dead(worker_id, exc)

    def _worker_step(self, worker_id: int, step: int,
                     per_worker_losses: List[List[float]],
                     eval_records: List[Tuple[int, float]]) -> None:
        """One iteration of Algorithm 2 at one worker (no end-of-step gate)."""
        runtime = self._workers[worker_id]
        if self._detector is not None:
            self._detector.beat(worker_id, step)
        if self._injector is not None:
            # Crash-at-step-start: a dying worker contributed nothing this
            # iteration, so nobody has to unwind a partial push.
            self._injector.begin_step(worker_id, step)
        self.bsp.reset_worker(worker_id)
        images, labels = self._batch(step, worker_id)

        # Bucketed wire granularity: per-layer jobs of bucketable schemes
        # accumulate and flush as combined scheduler jobs the moment the
        # bucket fills during backprop, so flushes still overlap with the
        # remaining backward pass.  Bucket membership is by dense gradient
        # bytes in reverse layer order -- the same greedy partition the
        # simulators apply via bucket_workload.
        bucketer = (GradientBucketer(self.bucket_bytes, runtime.scheduler)
                    if self.bucket_bytes is not None else None)

        def hook(_index: int, layer) -> None:
            if not layer.has_parameters:
                return
            syncer = runtime.syncers[layer.name]

            def job(syncer=syncer, layer_name=layer.name) -> None:
                self._sync_layer(syncer, worker_id, step)
                self.bsp.mark_done(worker_id, layer_name)

            if bucketer is None:
                runtime.scheduler.schedule(job)
                return
            scheme = self.assignment.scheme_for(layer.name)
            nbytes = sum(int(p.nbytes) for p in layer.params.values())
            bucketer.add(nbytes, job,
                         bucketable=get_backend(scheme).compressible)

        loss = runtime.network.train_step(images, labels, hook=hook)
        if bucketer is not None:
            bucketer.finish()
        runtime.scheduler.wait_all(timeout=self.sync_timeout)
        self.bsp.wait_worker(worker_id, timeout=self.sync_timeout)
        per_worker_losses[worker_id].append(loss)

        if (self.eval_every and self.test_data is not None and worker_id == 0
                and (step + 1) % self.eval_every == 0):
            _, error = runtime.network.evaluate(*self.test_data)
            eval_records.append((step + 1, error))

    def _end_of_step(self, worker_id: int) -> None:
        """The policy gate that replaced the unconditional BSP barrier.

        BSP and its degenerate equivalents (ssp(0), local_sgd(1)) keep the
        classic barrier -- the exact pre-policy code path, so they stay
        bit-identical to it.  Relaxed policies advance the per-worker SSP
        clock, which blocks only a worker more than ``s`` iterations ahead
        of the slowest (never, for async).  Local SGD with H > 1 has no
        per-iteration gate: its H-periodic averaging round is the
        rendezvous.
        """
        if self.clock is not None:
            self.clock.advance(worker_id)
        elif not self.policy.averages_parameters:
            self.bsp.barrier(worker_id, timeout=self.sync_timeout)

    def _sync_layer(self, syncer: Syncer, worker_id: int, step: int) -> None:
        """One layer sync, with bounded retry for injected transient faults.

        Transients fire *before* the syncer touches any substrate
        (fail-before-send), so a retry replays the identical bytes.
        Exhausting the retry budget escalates to a fatal
        :class:`WorkerFailure`, which recovery then handles like a crash.
        """
        if self._injector is None:
            syncer.sync(step)
            return
        attempts = 0
        while True:
            try:
                self._injector.before_sync(worker_id, step)
                syncer.sync(step)
                return
            except TransientFault as exc:
                attempts += 1
                if attempts > self.retry_limit:
                    raise WorkerFailure(
                        f"worker {worker_id} exhausted {self.retry_limit} "
                        f"sync retries at iteration {step}: {exc}",
                        worker_id=worker_id, iteration=step) from exc
                time.sleep(self.retry_backoff * (2 ** (attempts - 1)))

    # -- checkpointing and recovery ---------------------------------------------------
    def _take_checkpoint(self, step: int) -> None:
        """Snapshot the whole job at a quiescent step boundary."""
        substrate_snapshots: Dict[CommScheme, Any] = {}
        for scheme, substrate in self._substrates.items():
            try:
                substrate_snapshots[scheme] = substrate.checkpoint(
                    include_optimizer=True)
            except TypeError:
                # Stateless collectives take no optimizer flag.
                substrate_snapshots[scheme] = substrate.checkpoint()
        self._checkpoint = TrainerCheckpoint(
            step=step,
            replica_states=[r.network.get_state() for r in self._workers],
            optimizer_states=[r.resources.local_optimizer.get_state()
                              for r in self._workers],
            quantizer_states=[r.resources.quantizer.get_state()
                              for r in self._workers],
            compressor_states=[
                r.resources.compressor.get_state()
                if r.resources.compressor is not None else {}
                for r in self._workers],
            sampler_states=[r.sampler.get_state() if r.sampler is not None
                            else None for r in self._workers],
            substrate_snapshots=substrate_snapshots,
            clock_snapshot=(self.clock.snapshot()
                            if self.clock is not None else None),
        )

    def _restore_from_checkpoint(self, per_worker_losses: List[List[float]],
                                 eval_records: List[Tuple[int, float]]) -> None:
        """Rewind every replica, substrate and sampler to the checkpoint."""
        ckpt = self._checkpoint
        if ckpt is None:
            raise RecoveryError("no checkpoint to restore from")
        for runtime in self._workers:
            worker_id = runtime.worker_id
            runtime.network.set_state(ckpt.replica_states[worker_id])
            runtime.resources.local_optimizer.set_state(
                ckpt.optimizer_states[worker_id])
            runtime.resources.quantizer.set_state(
                ckpt.quantizer_states[worker_id])
            if (runtime.resources.compressor is not None
                    and ckpt.compressor_states):
                runtime.resources.compressor.set_state(
                    ckpt.compressor_states[worker_id])
            if (runtime.sampler is not None
                    and ckpt.sampler_states[worker_id] is not None):
                runtime.sampler.set_state(ckpt.sampler_states[worker_id])
            runtime.scheduler = self._make_scheduler()
        for scheme, snapshot in ckpt.substrate_snapshots.items():
            self._substrates[scheme].restore(snapshot)
        if self.clock is not None and ckpt.clock_snapshot is not None:
            self.clock.restore(ckpt.clock_snapshot)
        self.bsp.reset()
        self.bsp.iterations_completed = ckpt.step
        if self._detector is not None:
            self._detector.revive_all()
        for losses in per_worker_losses:
            del losses[ckpt.step:]
        eval_records[:] = [record for record in eval_records
                           if record[0] <= ckpt.step]

    def _primary_failure(self) -> Optional[BaseException]:
        """The root-cause failure of an attempt (cascades are secondary)."""
        fallback: Optional[BaseException] = None
        with self._error_lock:
            errors = list(self._errors)
        for exc in errors:
            if isinstance(exc, WorkerFailure):
                if not exc.cascade:
                    return exc
                fallback = fallback or exc
        if fallback is not None:
            return fallback
        return errors[0] if errors else None

    def _max_recoveries(self) -> int:
        """Restart budget: one per scheduled crash plus slack for cascades."""
        scheduled = len(self.fault_plan.crashes) if self.fault_plan else 0
        return scheduled + 2

    def _drop_worker(self, worker_id: int) -> None:
        """Excise a dead worker; survivors renormalize to a P-1 mean."""
        self._dropped_workers.add(worker_id)
        for substrate in self._substrates.values():
            remover = getattr(substrate, "remove_worker", None)
            if remover is not None:
                remover(worker_id)
        if self._averager is not None:
            self._averager.remove_worker(worker_id)
        if self.clock is not None:
            self.clock.remove_worker(worker_id)
        self.bsp.remove_worker(worker_id)

    @property
    def dropped_workers(self) -> Set[int]:
        """Workers excised by drop-dead-worker recovery so far."""
        return set(self._dropped_workers)

    # -- post-training access -------------------------------------------------------
    def replica(self, worker_id: int) -> Network:
        """The model replica of one worker (e.g. for evaluation)."""
        return self._replicas[worker_id]

    def replica_states_close(self, atol: float = 1e-4) -> bool:
        """Whether all replicas hold (numerically) identical parameters."""
        reference = self._replicas[0].get_state()
        for replica in self._replicas[1:]:
            state = replica.get_state()
            for layer_name, params in reference.items():
                for key, value in params.items():
                    if not np.allclose(state[layer_name][key], value, atol=atol):
                        return False
        return True
