"""Functional distributed training runtime.

This package runs *real* data-parallel SGD -- numpy forward/backward passes
on model replicas, gradients exchanged through the substrates in
:mod:`repro.comm`, wait-free backpropagation via per-worker thread pools and
BSP barriers -- inside a single process with one thread per worker.  It is
the correctness half of the reproduction: convergence comparisons
(Figure 11), replica-consistency and serial-equivalence properties are all
demonstrated on it.  Wall-clock performance on a real cluster is the job of
:mod:`repro.simulation`.
"""

from repro.parallel.schemes import SchemeAssignment, assign_schemes
from repro.parallel.trainer import DistributedTrainer, TrainingHistory
from repro.parallel.serial import SerialTrainer, simulate_synchronous_sgd

__all__ = [
    "SchemeAssignment",
    "assign_schemes",
    "DistributedTrainer",
    "TrainingHistory",
    "SerialTrainer",
    "simulate_synchronous_sgd",
]
