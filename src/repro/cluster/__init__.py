"""Cluster model: GPU machines and Ethernet links on top of :mod:`repro.sim`.

The model mirrors the paper's testbed: single-GPU (optionally multi-GPU)
machines, each with a full-duplex Ethernet NIC of configurable bandwidth,
connected through a non-blocking switch.  Every NIC direction is a FIFO
channel; the switch itself is never the bottleneck (as with the paper's
40GbE switch), so contention only occurs at node uplinks and downlinks --
which is exactly where the paper locates the communication bottlenecks
(Section 2.2, Section 5.3).
"""

from repro.cluster.machine import ClusterModel, GpuDevice, Machine, NetworkInterface
from repro.cluster.traffic import TrafficAccount

__all__ = [
    "ClusterModel",
    "Machine",
    "GpuDevice",
    "NetworkInterface",
    "TrafficAccount",
]
