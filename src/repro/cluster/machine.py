"""Machines, GPUs and NICs.

Transfers are modelled at flow granularity: a flow occupies the sender's
uplink and the receiver's downlink for ``bytes / bandwidth`` (plus a fixed
latency).  Flows whose far end is spread uniformly across many nodes (the
fine-grained KV store scatter/gather) can be addressed to the *fabric*, a
pseudo-endpoint with unlimited bandwidth, so that only the local NIC is
occupied; the aggregate load those flows impose on the remote NICs is
modelled by the corresponding fabric-to-node flows issued on the remote side.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro import units
from repro.config import ClusterConfig
from repro.exceptions import SimulationError
from repro.sim import Environment, Resource
from repro.cluster.traffic import TrafficAccount

#: Node id used to address the switching fabric pseudo-endpoint.
FABRIC = -1


class GpuDevice:
    """A GPU modelled as a serial compute resource with busy-time accounting."""

    def __init__(self, env: Environment, node_id: int, index: int,
                 effective_flops: float):
        self.env = env
        self.node_id = node_id
        self.index = index
        self.effective_flops = float(effective_flops)
        self.resource = Resource(env, capacity=1, name=f"gpu{node_id}.{index}")
        self.busy_seconds = 0.0

    def compute(self, seconds: float) -> Generator:
        """Process: run a kernel sequence of the given duration."""
        if seconds < 0:
            raise SimulationError(f"negative compute duration: {seconds}")
        request = self.resource.request()
        yield request
        try:
            yield self.env.timeout(seconds)
            self.busy_seconds += seconds
        finally:
            self.resource.release(request)

    def compute_flops(self, flops: float) -> Generator:
        """Process: run ``flops`` worth of work at the device's throughput."""
        return self.compute(flops / self.effective_flops)


class NetworkInterface:
    """A full-duplex NIC: independent FIFO uplink and downlink channels."""

    def __init__(self, env: Environment, node_id: int, bandwidth_bps: float,
                 latency_seconds: float = 0.0):
        if bandwidth_bps <= 0:
            raise SimulationError(f"NIC bandwidth must be positive, got {bandwidth_bps}")
        self.env = env
        self.node_id = node_id
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_seconds = float(latency_seconds)
        self.uplink = Resource(env, capacity=1, name=f"nic{node_id}.up")
        self.downlink = Resource(env, capacity=1, name=f"nic{node_id}.down")
        self.traffic = TrafficAccount(node_id)

    def wire_time(self, nbytes: float) -> float:
        """Serialisation delay of ``nbytes`` on this NIC."""
        return units.transfer_seconds(nbytes, self.bandwidth_bps)


class Machine:
    """A worker/server node: one NIC and one or more GPUs."""

    def __init__(self, env: Environment, node_id: int, config: ClusterConfig):
        self.env = env
        self.node_id = node_id
        self.nic = NetworkInterface(
            env, node_id, config.effective_bandwidth_bps, config.latency_seconds
        )
        self.gpus: List[GpuDevice] = [
            GpuDevice(env, node_id, index, config.gpu.effective_flops)
            for index in range(config.gpus_per_node)
        ]

    @property
    def gpu(self) -> GpuDevice:
        """The first (leader) GPU of the node."""
        return self.gpus[0]


class ClusterModel:
    """The simulated cluster: machines plus flow-level transfer primitives."""

    def __init__(self, env: Environment, config: ClusterConfig):
        self.env = env
        self.config = config
        num_nodes = config.num_workers
        if not config.colocate_servers:
            num_nodes += config.num_servers
        self.machines: Dict[int, Machine] = {
            node_id: Machine(env, node_id, config) for node_id in range(num_nodes)
        }

    # -- topology helpers --------------------------------------------------------
    @property
    def worker_ids(self) -> List[int]:
        """Node ids acting as workers."""
        return list(range(self.config.num_workers))

    @property
    def server_ids(self) -> List[int]:
        """Node ids hosting parameter-server shards."""
        if self.config.colocate_servers:
            return [sid % self.config.num_workers for sid in range(self.config.num_servers)]
        first = self.config.num_workers
        return list(range(first, first + self.config.num_servers))

    def machine(self, node_id: int) -> Machine:
        """Look up a machine by node id.

        Raises:
            SimulationError: if the node id is unknown (or is the fabric).
        """
        if node_id == FABRIC:
            raise SimulationError("the fabric pseudo-node has no machine")
        try:
            return self.machines[node_id]
        except KeyError as exc:
            raise SimulationError(f"unknown node id {node_id}") from exc

    # -- flows ---------------------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: float, tag: str = "untagged"
                 ) -> Generator:
        """Process: move ``nbytes`` from ``src`` to ``dst``.

        Either endpoint may be :data:`FABRIC`, in which case only the other
        endpoint's NIC is occupied.  A transfer between a node and itself is
        local and takes no network time (the colocated-PS-shard fast path).
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        if src == FABRIC and dst == FABRIC:
            raise SimulationError("transfer needs at least one real endpoint")
        if src == dst or nbytes == 0:
            return
        src_nic = None if src == FABRIC else self.machine(src).nic
        dst_nic = None if dst == FABRIC else self.machine(dst).nic

        bandwidth = min(
            nic.bandwidth_bps for nic in (src_nic, dst_nic) if nic is not None
        )
        latency = max(
            nic.latency_seconds for nic in (src_nic, dst_nic) if nic is not None
        )
        duration = units.transfer_seconds(nbytes, bandwidth) + latency

        up_request = src_nic.uplink.request() if src_nic is not None else None
        if up_request is not None:
            yield up_request
        down_request = dst_nic.downlink.request() if dst_nic is not None else None
        if down_request is not None:
            yield down_request
        try:
            yield self.env.timeout(duration)
        finally:
            if up_request is not None:
                src_nic.uplink.release(up_request)
                src_nic.traffic.record_sent(nbytes, tag)
            if down_request is not None:
                dst_nic.downlink.release(down_request)
                dst_nic.traffic.record_received(nbytes, tag)

    def broadcast(self, src: int, dst_ids: List[int], nbytes_each: float,
                  tag: str = "untagged") -> Generator:
        """Process: send ``nbytes_each`` from ``src`` to every node in ``dst_ids``.

        The sender's uplink carries the transfers back to back (FIFO); each
        receiver's downlink is occupied for its own copy.  Completes when the
        last copy has been delivered.
        """
        transfers = [
            self.env.process(self.transfer(src, dst, nbytes_each, tag=tag))
            for dst in dst_ids
            if dst != src
        ]
        if transfers:
            yield self.env.all_of(transfers)

    # -- accounting ------------------------------------------------------------------
    def reset_traffic(self) -> None:
        """Clear all per-node traffic counters."""
        for machine in self.machines.values():
            machine.nic.traffic.reset()

    def traffic_by_node(self) -> Dict[int, TrafficAccount]:
        """Per-node traffic accounts, keyed by node id."""
        return {node_id: m.nic.traffic for node_id, m in self.machines.items()}
