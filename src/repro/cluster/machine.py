"""Machines, GPUs and NICs.

Transfers are modelled at flow granularity: a flow occupies the sender's
uplink and the receiver's downlink for ``bytes / bandwidth`` (plus a fixed
latency).  Flows whose far end is spread uniformly across many nodes (the
fine-grained KV store scatter/gather) can be addressed to the *fabric*, a
pseudo-endpoint with unlimited bandwidth, so that only the local NIC is
occupied; the aggregate load those flows impose on the remote NICs is
modelled by the corresponding fabric-to-node flows issued on the remote side.

Each NIC direction is a capacity-1 FIFO channel.  Because such a channel
admits a *tail-clock* ("busy-until") model -- a new flow starts at
``max(now, tail)`` and advances the tail by its duration -- an uncontended
transfer is a single analytically-computed timeout instead of a
request/yield/release resource round-trip, and a broadcast serialises its
copies on the sender's uplink inside one process instead of spawning one
process per destination.  Completion times are identical to the historical
:class:`~repro.sim.resources.Resource`-based model: FIFO order is by
acquisition call either way, and contended holds chain on the previous
holder's release event, which is processed exactly when the channel frees.

With a non-flat rack topology (``ClusterConfig.racks > 1`` and
``oversubscription > 1``), every rack additionally owns a
:class:`RackSwitch` -- an aggregate uplink/downlink channel pair at
``node_bandwidth * rack_members / oversubscription``.  Cross-rack flows
hold their NICs as usual *and* serialise their bytes through the source
rack's uplink and the destination rack's downlink, so contention for the
scarce cross-rack bandwidth emerges exactly like NIC contention does.
Intra-rack flows never touch the rack channels, and a flat topology (the
default) skips this machinery entirely -- the event graph is byte-identical
to the pre-topology model.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro import units
from repro.config import ClusterConfig
from repro.exceptions import SimulationError
from repro.sim import Environment, Event, TailChannel
from repro.cluster.traffic import TrafficAccount

#: Node id used to address the switching fabric pseudo-endpoint.
FABRIC = -1


class GpuDevice:
    """A GPU modelled as a serial compute device with busy-time accounting.

    Kernel sequences are serialised FIFO on a busy-until clock (the
    simulator issues every node's compute from a single worker process, so
    the device is effectively uncontended and each sequence is one timeout).
    """

    def __init__(self, env: Environment, node_id: int, index: int,
                 effective_flops: float):
        self.env = env
        self.node_id = node_id
        self.index = index
        self.effective_flops = float(effective_flops)
        self.busy_seconds = 0.0
        self._free_at = 0.0

    def compute(self, seconds: float) -> Generator:
        """Process: run a kernel sequence of the given duration."""
        if seconds < 0:
            raise SimulationError(f"negative compute duration: {seconds}")
        now = self.env._now
        start = self._free_at
        if start < now:
            start = now
        finish = start + seconds
        self._free_at = finish
        yield self.env.timeout_at(finish)
        self.busy_seconds += seconds

    def compute_flops(self, flops: float) -> Generator:
        """Process: run ``flops`` worth of work at the device's throughput."""
        return self.compute(flops / self.effective_flops)


class NetworkInterface:
    """A full-duplex NIC: independent FIFO uplink and downlink channels."""

    def __init__(self, env: Environment, node_id: int, bandwidth_bps: float,
                 latency_seconds: float = 0.0):
        if bandwidth_bps <= 0:
            raise SimulationError(f"NIC bandwidth must be positive, got {bandwidth_bps}")
        self.env = env
        self.node_id = node_id
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_seconds = float(latency_seconds)
        self.uplink = TailChannel(env, name=f"nic{node_id}.up")
        self.downlink = TailChannel(env, name=f"nic{node_id}.down")
        self.traffic = TrafficAccount(node_id)

    def wire_time(self, nbytes: float) -> float:
        """Serialisation delay of ``nbytes`` on this NIC."""
        return units.transfer_seconds(nbytes, self.bandwidth_bps)


class RackSwitch:
    """The aggregate uplink of one rack's top-of-rack switch.

    Both directions are capacity-1 FIFO :class:`TailChannel` links at the
    rack's bisection bandwidth (``member NIC rate * members /
    oversubscription``).  A cross-rack flow serialises ``nbytes /
    bandwidth`` through the source rack's :attr:`uplink` and the
    destination rack's :attr:`downlink` -- its *share* of the aggregate
    pipe -- so N concurrent cross-rack flows collectively occupy the
    channel for exactly the time the fluid model predicts, while intra-rack
    flows bypass it entirely.
    """

    def __init__(self, env: Environment, rack_id: int, bandwidth_bps: float):
        if bandwidth_bps <= 0:
            raise SimulationError(
                f"rack bisection bandwidth must be positive, got {bandwidth_bps}")
        self.env = env
        self.rack_id = rack_id
        self.bandwidth_bps = float(bandwidth_bps)
        self.uplink = TailChannel(env, name=f"rack{rack_id}.up")
        self.downlink = TailChannel(env, name=f"rack{rack_id}.down")
        self.traffic = TrafficAccount(rack_id)

    def wire_time(self, nbytes: float) -> float:
        """Serialisation delay of ``nbytes`` on the rack's bisection link."""
        return units.transfer_seconds(nbytes, self.bandwidth_bps)


class Machine:
    """A worker/server node: one NIC and one or more GPUs."""

    def __init__(self, env: Environment, node_id: int, config: ClusterConfig):
        self.env = env
        self.node_id = node_id
        self.nic = NetworkInterface(
            env, node_id, config.effective_bandwidth_bps, config.latency_seconds
        )
        self.gpus: List[GpuDevice] = [
            GpuDevice(env, node_id, index, config.gpu.effective_flops)
            for index in range(config.gpus_per_node)
        ]

    @property
    def gpu(self) -> GpuDevice:
        """The first (leader) GPU of the node."""
        return self.gpus[0]


class ClusterModel:
    """The simulated cluster: machines plus flow-level transfer primitives."""

    def __init__(self, env: Environment, config: ClusterConfig):
        self.env = env
        self.config = config
        num_nodes = config.num_workers
        if not config.colocate_servers:
            num_nodes += config.num_servers
        self.machines: Dict[int, Machine] = {
            node_id: Machine(env, node_id, config) for node_id in range(num_nodes)
        }
        #: Whether cross-rack flows contend on shared rack uplinks.  A flat
        #: topology (single rack or full bisection) takes the historical
        #: code paths untouched -- byte-identical event graphs.
        self.topology_active = not config.is_flat_topology
        self.rack_switches: List[RackSwitch] = []
        self._rack_by_node: List[int] = []
        self._cross_fraction_by_node: List[float] = []
        if self.topology_active:
            rack_size = config.nodes_per_rack
            for rack_id in range(0, (num_nodes + rack_size - 1) // rack_size):
                members = min(rack_size, num_nodes - rack_id * rack_size)
                self.rack_switches.append(RackSwitch(
                    env, rack_id, config.rack_bisection_bps(members)))
            # Per-node lookup tables: rack_of / fabric_cross_fraction sit on
            # every flow's hot path, so the chained config properties are
            # resolved once here.
            for node_id in range(num_nodes):
                rack = node_id // rack_size
                members = min(rack_size, num_nodes - rack * rack_size)
                self._rack_by_node.append(rack)
                self._cross_fraction_by_node.append(
                    (num_nodes - members) / (num_nodes - 1)
                    if num_nodes > 1 else 0.0)

    # -- topology helpers --------------------------------------------------------
    @property
    def worker_ids(self) -> List[int]:
        """Node ids acting as workers."""
        return list(range(self.config.num_workers))

    @property
    def server_ids(self) -> List[int]:
        """Node ids hosting parameter-server shards."""
        if self.config.colocate_servers:
            return [sid % self.config.num_workers for sid in range(self.config.num_servers)]
        first = self.config.num_workers
        return list(range(first, first + self.config.num_servers))

    def ring_successor(self, worker_id: int) -> int:
        """The next worker on the logical ring (worker ids, wrap-around).

        Used by ring-style collectives (e.g. the ring all-reduce backend):
        worker ``i`` always ships to worker ``(i + 1) mod P``.

        Raises:
            SimulationError: if ``worker_id`` is not a worker node.
        """
        num_workers = self.config.num_workers
        if not 0 <= worker_id < num_workers:
            raise SimulationError(
                f"worker id {worker_id} out of range [0, {num_workers})"
            )
        return (worker_id + 1) % num_workers

    def racks(self, rack_size: Optional[int] = None) -> List[List[int]]:
        """Workers grouped into racks of ``rack_size`` consecutive ids.

        The grouping used by hierarchical (rack-aggregating) schemes; the
        last rack may be smaller when the worker count is not a multiple.
        Without an explicit ``rack_size`` the physical topology's rack
        size (``ClusterConfig.nodes_per_rack``) is used, so schemes that
        aggregate per rack align with the racks whose uplinks actually
        contend.

        Raises:
            SimulationError: on a non-positive rack size.
        """
        if rack_size is None:
            rack_size = self.config.nodes_per_rack
        if rack_size < 1:
            raise SimulationError(f"rack_size must be >= 1, got {rack_size}")
        workers = self.worker_ids
        return [workers[first:first + rack_size]
                for first in range(0, len(workers), rack_size)]

    def rack_of(self, node_id: int) -> int:
        """Rack index of a node under the physical topology.

        Raises:
            SimulationError: for ids outside the cluster (including the
                :data:`FABRIC` sentinel, which belongs to no rack).
        """
        if self.topology_active:
            if 0 <= node_id < len(self._rack_by_node):
                return self._rack_by_node[node_id]
            raise SimulationError(f"node id {node_id} belongs to no rack")
        return self.config.rack_of(node_id)

    def rack_switch(self, node_id: int) -> RackSwitch:
        """The :class:`RackSwitch` of a node's rack (topology must be active)."""
        if not self.topology_active:
            raise SimulationError(
                "rack switches only exist under a non-flat topology")
        return self.rack_switches[self._rack_by_node[node_id]]

    def fabric_cross_fraction(self, node_id: int) -> float:
        """Fraction of a node's fabric traffic that crosses its rack boundary.

        Fabric flows are spread uniformly over the *other* nodes (the
        fine-grained KV store's balanced shards), so the cross-rack share
        is the fraction of remote nodes living outside the node's rack.
        """
        if self.topology_active:
            return self._cross_fraction_by_node[node_id]
        return 0.0

    def machine(self, node_id: int) -> Machine:
        """Look up a machine by node id.

        Raises:
            SimulationError: if the node id is unknown (or is the fabric).
        """
        if node_id == FABRIC:
            raise SimulationError("the fabric pseudo-node has no machine")
        try:
            return self.machines[node_id]
        except KeyError as exc:
            raise SimulationError(f"unknown node id {node_id}") from exc

    # -- flows ---------------------------------------------------------------------
    def _hold_path(self, plan) -> Generator:
        """Process: hold a chain of channels FIFO; finish at the last release.

        ``plan`` is a sequence of ``(channel, hold_seconds)`` pairs.  The
        channels are acquired in order, with earlier channels staying held
        while the flow queues for later ones (head-of-line blocking, the
        same protocol point-to-point flows use at their two NICs).  Once
        the final channel is granted every hold starts, and each channel
        frees after its own ``hold_seconds`` -- a NIC holds for the flow's
        bottleneck serialisation time, a rack switch only for the flow's
        share of the aggregate pipe.

        Deadlock safety: every caller must list channels in the global
        acquisition order ``NIC uplink < rack uplink < rack downlink <
        NIC downlink`` (the sender side climbs the tree, the receiver side
        descends it).  Hold-and-wait cycles are impossible as long as all
        holders respect that order.
        """
        env = self.env
        releases = []
        for channel, _ in plan:
            release = yield from channel.request()
            releases.append(release)
        start = env._now
        finish = start
        for (channel, hold_seconds), release in zip(plan, releases):
            channel_finish = start + hold_seconds
            channel.release(release, channel_finish)
            if channel_finish > finish:
                finish = channel_finish
        yield env.timeout_at(finish)

    def _cross_rack_transfer(self, src: int, dst: int,
                             src_nic: NetworkInterface,
                             dst_nic: NetworkInterface,
                             nbytes: float, tag: str,
                             uplink_held: bool = False) -> Generator:
        """Process: a point-to-point flow whose endpoints sit in different racks.

        In addition to the two NICs, the flow serialises its bytes through
        the source rack's aggregate uplink and the destination rack's
        aggregate downlink, so concurrent cross-rack flows of one rack
        contend for the scarce bisection bandwidth while intra-rack flows
        do not.  With ``uplink_held`` the caller already owns the sender's
        NIC uplink (a broadcast batch holding it across copies) and the
        hold path starts at the rack switch.
        """
        src_switch = self.rack_switch(src)
        dst_switch = self.rack_switch(dst)
        bottleneck = min(src_nic.bandwidth_bps, dst_nic.bandwidth_bps,
                         src_switch.bandwidth_bps, dst_switch.bandwidth_bps)
        latency = max(src_nic.latency_seconds, dst_nic.latency_seconds)
        flow_seconds = units.transfer_seconds(nbytes, bottleneck) + latency
        plan = (
            (src_switch.uplink, src_switch.wire_time(nbytes)),
            (dst_switch.downlink, dst_switch.wire_time(nbytes)),
            (dst_nic.downlink, flow_seconds),
        )
        if not uplink_held:
            plan = ((src_nic.uplink, flow_seconds),) + plan
        yield from self._hold_path(plan)
        src_nic.traffic.record_sent(nbytes, tag)
        src_switch.traffic.record_sent(nbytes, tag)
        dst_switch.traffic.record_received(nbytes, tag)
        dst_nic.traffic.record_received(nbytes, tag)

    def _rack_fabric_flow(self, node: int, nic: NetworkInterface,
                          outbound: bool, nbytes: float, cross_bytes: float,
                          tag: str) -> Generator:
        """Process: a fabric flow of a node in an oversubscribed rack.

        The node's NIC carries the full payload; the rack switch carries
        only the cross-rack share (``cross_bytes``), since fabric traffic
        is spread uniformly and the intra-rack part never leaves the rack.
        The flow completes when both serialisations have finished.
        """
        switch = self.rack_switch(node)
        nic_seconds = nic.wire_time(nbytes) + nic.latency_seconds
        rack_seconds = switch.wire_time(cross_bytes)
        if outbound:  # climb the tree: NIC uplink before rack uplink
            plan = ((nic.uplink, nic_seconds), (switch.uplink, rack_seconds))
        else:  # descend it: rack downlink before NIC downlink
            plan = ((switch.downlink, rack_seconds), (nic.downlink, nic_seconds))
        yield from self._hold_path(plan)
        if outbound:
            nic.traffic.record_sent(nbytes, tag)
            switch.traffic.record_sent(cross_bytes, tag)
        else:
            nic.traffic.record_received(nbytes, tag)
            switch.traffic.record_received(cross_bytes, tag)

    def transfer(self, src: int, dst: int, nbytes: float, tag: str = "untagged"
                 ) -> Generator:
        """Process: move ``nbytes`` from ``src`` to ``dst``.

        Either endpoint may be :data:`FABRIC`, in which case only the other
        endpoint's NIC is occupied.  A transfer between a node and itself is
        local and takes no network time (the colocated-PS-shard fast path).

        The flow claims the sender's uplink at call time (FIFO) and the
        receiver's downlink at the moment the uplink is granted -- the same
        two-phase protocol the resource-based model used, with each phase
        collapsing to tail-clock arithmetic whenever its channel has no
        open hold.

        Under a non-flat topology, flows that cross a rack boundary (or
        touch the fabric from an oversubscribed rack) additionally
        serialise through the shared rack switch channels; intra-rack
        flows take the historical path untouched.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        if src == FABRIC and dst == FABRIC:
            raise SimulationError("transfer needs at least one real endpoint")
        if src == dst or nbytes == 0:
            return
        src_nic = None if src == FABRIC else self.machine(src).nic
        dst_nic = None if dst == FABRIC else self.machine(dst).nic

        if self.topology_active:
            if src_nic is not None and dst_nic is not None:
                if self.rack_of(src) != self.rack_of(dst):
                    yield from self._cross_rack_transfer(
                        src, dst, src_nic, dst_nic, nbytes, tag)
                    return
            else:
                node = src if src_nic is not None else dst
                nic = src_nic if src_nic is not None else dst_nic
                cross_bytes = nbytes * self.fabric_cross_fraction(node)
                if cross_bytes > 0.0:
                    yield from self._rack_fabric_flow(
                        node, nic, src_nic is not None, nbytes, cross_bytes,
                        tag)
                    return

        bandwidth = min(
            nic.bandwidth_bps for nic in (src_nic, dst_nic) if nic is not None
        )
        latency = max(
            nic.latency_seconds for nic in (src_nic, dst_nic) if nic is not None
        )
        duration = units.transfer_seconds(nbytes, bandwidth) + latency
        env = self.env

        if src_nic is None or dst_nic is None:
            # Fabric flow: a single channel, so the whole hold is one
            # analytic booking (or a chained wait behind an open hold).
            if src_nic is not None:
                channel = src_nic.uplink
            else:
                channel = dst_nic.downlink
            release = channel._release
            if release is None or release.triggered:
                finish = channel.book(duration)
                wake = env.timeout_at(finish)
                channel.note_entry(wake, finish)
                yield wake
            else:
                mine = Event(env)
                channel._release = mine
                yield release  # granted exactly when the holder frees up
                finish = env._now + duration
                channel.release(mine, finish)
                yield mine  # the release entry doubles as our own wake-up
            if src_nic is not None:
                src_nic.traffic.record_sent(nbytes, tag)
            else:
                dst_nic.traffic.record_received(nbytes, tag)
            return

        up = src_nic.uplink
        down = dst_nic.downlink
        # Phase 1: the uplink, claimed at call time.
        up_release: Optional[Event] = None
        previous = up._release
        if previous is not None and not previous.triggered:
            up_release = Event(env)
            up._release = up_release
            yield previous
        else:
            now = env._now
            if up.tail > now:
                # Busy but resolved: keep the hold open and wake at the
                # grant, which is when the downlink gets requested.  Anchor
                # the wake on the holder's own finish entry when known, so
                # same-instant grants across channels dispatch in the
                # holders' order (as resource releases did).
                up_release = Event(env)
                up._release = up_release
                anchor = up.grant_anchor()
                if anchor is not None:
                    yield anchor
                else:
                    yield env.timeout_at(up.tail)
        # Phase 2: the downlink, requested at the uplink grant.  The uplink
        # is released (succeed_at with a sequence tick) at the moment the
        # copy starts transmitting -- the moment the resource-based model
        # created the transmit timeout -- so same-instant uplink releases
        # across channels dispatch in the seed's order.
        previous = down._release
        if previous is None or previous.triggered:
            now = env._now
            start = down.tail
            if start <= now:
                # Receiver idle: the whole hold is analytic from here.
                finish = now + duration
                down.tail = finish
                up.tail = finish
                if up_release is not None:
                    up_release.succeed_at(finish)
                    up.note_entry(up_release, finish)
                    yield up_release
                else:
                    wake = env.timeout_at(finish)
                    up.note_entry(wake, finish)
                    yield wake
            else:
                # Receiver busy but resolved: take the FIFO spot now, hold
                # the uplink open, and release it once transmission starts.
                finish = start + duration
                down.tail = finish
                if up_release is None:
                    up_release = Event(env)
                    up._release = up_release
                yield env.timeout_at(start)
                up.tail = finish
                up_release.succeed_at(finish)
                up.note_entry(up_release, finish)
                yield up_release
        else:
            down_release = Event(env)
            down._release = down_release
            if up_release is None:
                # The uplink hold stays open while we queue at the receiver.
                up_release = Event(env)
                up._release = up_release
            yield previous
            finish = env._now + duration
            down.release(down_release, finish)
            up.tail = finish
            up_release.succeed_at(finish)
            up.note_entry(up_release, finish)
            yield down_release
        src_nic.traffic.record_sent(nbytes, tag)
        dst_nic.traffic.record_received(nbytes, tag)

    def broadcast(self, src: int, dst_ids: List[int], nbytes_each: float,
                  tag: str = "untagged") -> Generator:
        """Process: send ``nbytes_each`` from ``src`` to every node in ``dst_ids``.

        The sender's uplink carries the copies back to back (FIFO) and is
        held across the whole batch by this single process -- equivalent to
        the per-destination processes that used to queue all their uplink
        requests up front, but with one queue entry per copy instead of a
        process per destination.  Each copy still queues for its receiver's
        downlink while holding the uplink (head-of-line blocking, exactly
        as before).  Completes when the last copy has been delivered.

        Under a non-flat topology, copies addressed outside the sender's
        rack additionally serialise through the source rack's uplink and
        the destination rack's downlink while the batch holds the NIC.
        """
        if nbytes_each < 0:
            raise SimulationError(f"negative transfer size: {nbytes_each}")
        destinations = [dst for dst in dst_ids if dst != src]
        if not destinations or nbytes_each == 0:
            return
        env = self.env
        src_nic = self.machine(src).nic
        up = src_nic.uplink
        # Replicate the hop structure of the per-destination processes so
        # same-instant interleaving with other flows is unchanged: a copy
        # requested its receiver's downlink one queue hop after its uplink
        # grant (the grant-event dispatch), and the first copy of an
        # uncontended batch also consumed its process-bootstrap hop.
        acquired_synchronously = up.resolved and up.tail <= env._now
        up_release = yield from up.request()
        if acquired_synchronously:
            yield env.timeout(0.0)
        yield env.timeout(0.0)
        for dst in destinations:
            dst_nic = self.machine(dst).nic
            if self.topology_active and self.rack_of(src) != self.rack_of(dst):
                # Cross-rack copy: serialise through both rack switches
                # (while this process keeps holding the batch uplink).
                yield from self._cross_rack_transfer(
                    src, dst, src_nic, dst_nic, nbytes_each, tag,
                    uplink_held=True)
                continue
            bandwidth = min(src_nic.bandwidth_bps, dst_nic.bandwidth_bps)
            latency = max(src_nic.latency_seconds, dst_nic.latency_seconds)
            duration = units.transfer_seconds(nbytes_each, bandwidth) + latency
            down = dst_nic.downlink
            previous = down._release
            if previous is None or previous.triggered:
                finish = down.book(duration)
                yield env.timeout_at(finish)
            else:
                down_release = Event(env)
                down._release = down_release
                yield previous
                down.release(down_release, env._now + duration)
                yield down_release
            src_nic.traffic.record_sent(nbytes_each, tag)
            dst_nic.traffic.record_received(nbytes_each, tag)
        up.release(up_release)

    def _fabric_fan(self, node_ids: List[int], nbytes_each: float, tag: str,
                    outbound: bool) -> Event:
        """Aggregate fabric flows at many nodes; event fires at the last finish.

        Each flow occupies exactly one channel (``node -> FABRIC`` the
        node's uplink, ``FABRIC -> node`` its downlink), so no flow ever
        holds one channel while waiting for another; its schedule is fully
        determined at booking.  Each flow is therefore a single scheduled
        *booking thunk* -- occupying exactly the queue slot the historical
        per-node transfer process' bootstrap did, so same-instant
        interleaving with other flows is unchanged -- that either books the
        resolved channel analytically or chains a waiter behind the open
        hold.  One deferred event fires at the last finish.
        """
        env = self.env
        if nbytes_each < 0:
            raise SimulationError(f"negative transfer size: {nbytes_each}")
        if not node_ids or nbytes_each == 0:
            return Event(env).succeed()
        done = Event(env)

        # One booking per occupied channel: every node's NIC channel and --
        # under a non-flat topology -- its rack switch channel, which
        # carries the cross-rack share of the fabric bytes.  A flat
        # topology schedules exactly the historical per-NIC thunks.
        bookings: List[Tuple[TailChannel, float, TrafficAccount, float]] = []
        for node in node_ids:
            nic = self.machine(node).nic
            channel = nic.uplink if outbound else nic.downlink
            duration = (units.transfer_seconds(nbytes_each, nic.bandwidth_bps)
                        + nic.latency_seconds)
            bookings.append((channel, duration, nic.traffic, nbytes_each))
            if self.topology_active:
                cross_bytes = nbytes_each * self.fabric_cross_fraction(node)
                if cross_bytes > 0.0:
                    switch = self.rack_switch(node)
                    rack_channel = (switch.uplink if outbound
                                    else switch.downlink)
                    bookings.append((rack_channel,
                                     switch.wire_time(cross_bytes),
                                     switch.traffic, cross_bytes))

        #: [bookings not yet placed, latest finish seen so far]
        pending = [len(bookings), env._now]

        def complete(finish: float) -> None:
            if finish > pending[1]:
                pending[1] = finish
            pending[0] -= 1
            if pending[0] == 0:
                done.succeed_at(pending[1])

        def booking_thunk(channel: TailChannel, duration: float,
                          traffic: TrafficAccount, nbytes: float):
            def thunk() -> None:
                previous = channel._release
                if previous is None or previous.triggered:
                    complete(channel.book(duration))
                else:
                    mine = Event(env)
                    channel._release = mine

                    def on_grant(ok, value, channel=channel, mine=mine,
                                 duration=duration) -> None:
                        finish = env._now + duration
                        channel.release(mine, finish)
                        complete(finish)

                    previous.add_waiter(on_grant)
                if outbound:
                    traffic.record_sent(nbytes, tag)
                else:
                    traffic.record_received(nbytes, tag)

            return thunk

        for booking in bookings:
            env.schedule_thunk(booking_thunk(*booking))
        return done

    def fabric_gather(self, node_ids: List[int], nbytes_each: float,
                      tag: str = "untagged") -> Event:
        """Fabric-to-node flows into every node's downlink; fires at the last."""
        return self._fabric_fan(node_ids, nbytes_each, tag, outbound=False)

    def fabric_scatter(self, node_ids: List[int], nbytes_each: float,
                       tag: str = "untagged") -> Event:
        """Node-to-fabric flows out of every node's uplink; fires at the last."""
        return self._fabric_fan(node_ids, nbytes_each, tag, outbound=True)

    # -- accounting ------------------------------------------------------------------
    def reset_traffic(self) -> None:
        """Clear all per-node (and per-rack) traffic counters."""
        for machine in self.machines.values():
            machine.nic.traffic.reset()
        for switch in self.rack_switches:
            switch.traffic.reset()

    def cross_rack_bytes(self) -> float:
        """Total bytes that left any rack through its oversubscribed uplink.

        Zero for flat topologies (no rack switches are modelled there).
        """
        return sum(switch.traffic.bytes_sent for switch in self.rack_switches)

    def traffic_by_node(self) -> Dict[int, TrafficAccount]:
        """Per-node traffic accounts, keyed by node id."""
        return {node_id: m.nic.traffic for node_id, m in self.machines.items()}
