"""Per-node traffic accounting.

Figure 10 of the paper compares the per-node network traffic (Gb per
iteration) of TF-WFBP, Adam and Poseidon; the accounting object below is
what the simulator fills in to regenerate that figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro import units


@dataclass
class TrafficAccount:
    """Bytes sent and received by one node, grouped by traffic tag."""

    node_id: int
    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    by_tag_sent: Dict[str, float] = field(default_factory=dict)
    by_tag_received: Dict[str, float] = field(default_factory=dict)

    def record_sent(self, nbytes: float, tag: str = "untagged") -> None:
        """Account for ``nbytes`` leaving this node."""
        self.bytes_sent += nbytes
        self.by_tag_sent[tag] = self.by_tag_sent.get(tag, 0.0) + nbytes

    def record_received(self, nbytes: float, tag: str = "untagged") -> None:
        """Account for ``nbytes`` arriving at this node."""
        self.bytes_received += nbytes
        self.by_tag_received[tag] = self.by_tag_received.get(tag, 0.0) + nbytes

    @property
    def total_bytes(self) -> float:
        """Total bytes through this node's NIC in both directions."""
        return self.bytes_sent + self.bytes_received

    @property
    def total_gigabits(self) -> float:
        """Total traffic in gigabits (the unit of Figure 10)."""
        return units.bytes_to_bits(self.total_bytes) / units.GBIT

    def reset(self) -> None:
        """Clear all counters (called between measured iterations)."""
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        self.by_tag_sent.clear()
        self.by_tag_received.clear()
