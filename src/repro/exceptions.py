"""Exception hierarchy for the Poseidon reproduction library.

Every error raised by this package derives from :class:`ReproError` so that
callers embedding the library can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the reproduction library."""


class ConfigurationError(ReproError):
    """An invalid cluster, training or model configuration was supplied."""


class ModelSpecError(ReproError):
    """A model specification is malformed (e.g. inconsistent layer shapes)."""


class CommunicationError(ReproError):
    """A communication substrate detected a protocol violation."""


class PartitionError(ReproError):
    """Parameters could not be partitioned into KV pairs / shards."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TrainingError(ReproError):
    """The functional distributed trainer failed."""


class ShapeError(ReproError):
    """A tensor with an unexpected shape was passed to a layer or loss."""
