"""Exception hierarchy for the Poseidon reproduction library.

Every error raised by this package derives from :class:`ReproError` so that
callers embedding the library can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the reproduction library."""


class ConfigurationError(ReproError):
    """An invalid cluster, training or model configuration was supplied."""


class ModelSpecError(ReproError):
    """A model specification is malformed (e.g. inconsistent layer shapes)."""


class CommunicationError(ReproError):
    """A communication substrate detected a protocol violation."""


class PartitionError(ReproError):
    """Parameters could not be partitioned into KV pairs / shards."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TrainingError(ReproError):
    """The functional distributed trainer failed."""


class ShapeError(ReproError):
    """A tensor with an unexpected shape was passed to a layer or loss."""


class WorkerFailure(TrainingError):
    """A worker crashed (or observed a crashed peer) during training.

    ``worker_id``/``iteration`` locate the failure; ``cascade`` is True on
    the copies raised at *surviving* workers when a peer's death is
    propagated through a sync primitive's abort path (only the original,
    non-cascade failure identifies the dead worker).
    """

    def __init__(self, message: str, worker_id: int = -1, iteration: int = -1,
                 cascade: bool = False):
        super().__init__(message)
        self.worker_id = worker_id
        self.iteration = iteration
        self.cascade = cascade


class TransientFault(WorkerFailure):
    """A retryable transient communication failure (lossy-link model).

    Raised before any state is mutated, so retrying the sync is always
    safe.  The trainer retries these with bounded exponential backoff;
    only after the retry budget is exhausted does the failure become
    fatal (re-raised as a plain :class:`WorkerFailure`).
    """


class SyncTimeout(CommunicationError, TrainingError):
    """A bounded wait on a sync path expired (suspected dead peer).

    Subclasses both :class:`CommunicationError` and :class:`TrainingError`
    because timeouts previously surfaced as either depending on the layer
    (substrate pulls vs. trainer barriers); existing callers catching
    either base keep working.
    """


class RecoveryError(TrainingError):
    """Crash recovery itself failed (no checkpoint, exhausted restarts)."""
