"""Design-choice ablations (the knobs DESIGN.md calls out).

Not a paper figure, but each ablation isolates one of Poseidon's design
decisions so its contribution can be quantified on the simulator:

* WFBP on/off at a fixed communication scheme.
* HybComm vs. always-PS vs. always-SFB.
* Fine-grained (2 MB KV pair) vs. coarse per-tensor partitioning.
* Number of dedicated vs. colocated parameter-server shards.
* Batch-size sensitivity of the SFB/PS crossover (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.config import ClusterConfig
from repro.core.cost_model import CommScheme, ps_combined_cost, sfb_worker_cost
from repro.core.wfbp import ScheduleMode
from repro.engines import POSEIDON_CAFFE
from repro.engines.base import CommMode, Partitioning
from repro.experiments.report import format_table
from repro.nn.model_zoo import get_model_spec
from repro.simulation.throughput import simulate_system


@dataclass
class AblationResult:
    """Speedups of each ablated variant, keyed by variant label."""

    model: str
    num_nodes: int
    bandwidth_gbps: float
    speedups: Dict[str, float] = field(default_factory=dict)

    def speedup(self, label: str) -> float:
        """Speedup of one variant."""
        return self.speedups[label]


def run_system_ablation(model_key: str = "vgg19", num_nodes: int = 16,
                        bandwidth_gbps: float = 10.0) -> AblationResult:
    """Ablate WFBP, HybComm and partitioning granularity on one model."""
    spec = get_model_spec(model_key)
    cluster = ClusterConfig(num_workers=num_nodes, bandwidth_gbps=bandwidth_gbps)
    variants = {
        "full poseidon": POSEIDON_CAFFE,
        "no WFBP": POSEIDON_CAFFE.with_schedule(ScheduleMode.SEQUENTIAL),
        "no HybComm (PS only)": POSEIDON_CAFFE.with_comm(CommMode.PS),
        "SFB for all FC layers": POSEIDON_CAFFE.with_comm(CommMode.SFB_ONLY),
        "coarse partitioning": POSEIDON_CAFFE.with_partitioning(Partitioning.COARSE),
        "no WFBP, no HybComm": POSEIDON_CAFFE.with_schedule(
            ScheduleMode.SEQUENTIAL).with_comm(CommMode.PS),
    }
    result = AblationResult(model=spec.name, num_nodes=num_nodes,
                            bandwidth_gbps=bandwidth_gbps)
    for label, system in variants.items():
        result.speedups[label] = simulate_system(
            spec, system.renamed(label), cluster).speedup
    return result


def run_server_count_ablation(model_key: str = "vgg19", num_nodes: int = 16,
                              bandwidth_gbps: float = 10.0,
                              server_counts: Sequence[int] = (1, 2, 4, 8, 16)
                              ) -> Dict[int, float]:
    """Speedup of PS-only Poseidon as the number of PS shards varies."""
    spec = get_model_spec(model_key)
    system = POSEIDON_CAFFE.with_comm(CommMode.PS).renamed("PS shards ablation")
    speedups = {}
    for servers in server_counts:
        cluster = ClusterConfig(num_workers=num_nodes, num_servers=servers,
                                bandwidth_gbps=bandwidth_gbps)
        speedups[servers] = simulate_system(spec, system, cluster).speedup
    return speedups


def run_batch_size_crossover(m: int = 4096, n: int = 4096,
                             num_workers: int = 8, num_servers: int = 8,
                             batch_sizes: Sequence[int] = (8, 16, 32, 64, 128, 256,
                                                           512, 1024, 2048)
                             ) -> Dict[int, CommScheme]:
    """Scheme Algorithm 1 picks for an FC layer as the batch size grows."""
    decisions = {}
    for batch in batch_sizes:
        sfb = sfb_worker_cost(m, n, batch, num_workers)
        ps = ps_combined_cost(m, n, num_workers, num_servers)
        decisions[batch] = CommScheme.SFB if sfb <= ps else CommScheme.PS
    return decisions


def render(result: AblationResult) -> str:
    """Render the system ablation as a table."""
    baseline = result.speedups.get("full poseidon", 1.0)
    rows: List[tuple] = []
    for label, speedup in result.speedups.items():
        rows.append((label, speedup, f"{speedup / baseline * 100:.0f}%"))
    return format_table(
        headers=["Variant", "Speedup", "Relative to full Poseidon"],
        rows=rows,
        title=(f"Ablation: {result.model} on {result.num_nodes} nodes at "
               f"{result.bandwidth_gbps:g} GbE"),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_system_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
