"""Reproduction-fidelity scoring.

Compares measured results against the values reported in the paper
(:mod:`repro.experiments.paper_reference`) and classifies each check as
matching in *shape* (ordering preserved and within a tolerance band) or not.
The runner and the test suite both use this to keep the claim "the shape of
every result holds" honest and machine-checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments import fig5 as fig5_module
from repro.experiments import fig6 as fig6_module
from repro.experiments import paper_reference
from repro.experiments.report import format_table


@dataclass(frozen=True)
class FidelityCheck:
    """One paper-vs-measured comparison.

    Attributes:
        name: what is being compared.
        reported: the paper's value (``None`` when only an ordering is claimed).
        measured: the reproduced value.
        passed: whether the check is within its tolerance band.
        detail: human-readable explanation of the band applied.
    """

    name: str
    reported: Optional[float]
    measured: float
    passed: bool
    detail: str = ""


@dataclass
class FidelityReport:
    """A collection of fidelity checks with aggregate statistics."""

    checks: List[FidelityCheck] = field(default_factory=list)

    def add_ratio_check(self, name: str, reported: Optional[float], measured: float,
                        rel_tolerance: float = 0.5) -> FidelityCheck:
        """Add a check requiring measured/reported within ``1 +- rel_tolerance``."""
        if reported in (None, 0):
            check = FidelityCheck(name=name, reported=reported, measured=measured,
                                  passed=True, detail="no paper value; recorded only")
        else:
            ratio = measured / reported
            passed = (1.0 - rel_tolerance) <= ratio <= (1.0 + rel_tolerance)
            check = FidelityCheck(
                name=name, reported=reported, measured=measured, passed=passed,
                detail=f"ratio {ratio:.2f}, band ±{rel_tolerance:.0%}")
        self.checks.append(check)
        return check

    def add_ordering_check(self, name: str, smaller: float, larger: float
                           ) -> FidelityCheck:
        """Add a check asserting ``smaller <= larger`` (an ordering claim)."""
        check = FidelityCheck(
            name=name, reported=None, measured=larger - smaller,
            passed=smaller <= larger + 1e-9,
            detail=f"requires {smaller:.2f} <= {larger:.2f}")
        self.checks.append(check)
        return check

    @property
    def num_passed(self) -> int:
        """Number of checks within their band."""
        return sum(1 for check in self.checks if check.passed)

    @property
    def all_passed(self) -> bool:
        """Whether every check passed."""
        return self.num_passed == len(self.checks)

    def render(self) -> str:
        """Readable table of all checks."""
        rows = [
            (
                check.name,
                "-" if check.reported is None else f"{check.reported:.2f}",
                f"{check.measured:.2f}",
                "ok" if check.passed else "MISMATCH",
                check.detail,
            )
            for check in self.checks
        ]
        title = (f"Reproduction fidelity: {self.num_passed}/{len(self.checks)} "
                 f"checks within band")
        return format_table(
            headers=["Check", "Paper", "Measured", "Status", "Detail"],
            rows=rows, title=title)


def scaling_fidelity(node_counts=(1, 8, 16, 32),
                     jobs: Optional[int] = None) -> FidelityReport:
    """Fidelity checks for the Figure 5 / Figure 6 headline speedups.

    The band is deliberately wide (±50%) -- the brief asks for the *shape*
    (who wins, roughly what factor), not testbed-exact numbers; ordering
    checks capture the who-wins part exactly.  ``jobs`` is forwarded to the
    underlying Figure 5 / Figure 6 sweeps.
    """
    report = FidelityReport()
    fig5_result = fig5_module.run_fig5(node_counts=node_counts, jobs=jobs)
    fig6_result = fig6_module.run_fig6(node_counts=node_counts, jobs=jobs)
    top = max(node_counts)

    for model, per_system in paper_reference.FIG5_SPEEDUPS_32_NODES.items():
        for system, reported in per_system.items():
            measured = fig5_result.speedup(model, system, top)
            report.add_ratio_check(
                f"fig5 {model} {system} @{top} nodes", reported, measured)
    for model, per_system in paper_reference.FIG6_SPEEDUPS_32_NODES.items():
        for system, reported in per_system.items():
            if reported <= 4.0:
                # "Fails to scale" claims are ordering checks, not ratios.
                measured = fig6_result.speedup(model, system, top)
                report.add_ordering_check(
                    f"fig6 {model} {system} stays far below Poseidon",
                    measured, 0.35 * fig6_result.speedup(model, "Poseidon (TF)", top))
                continue
            measured = fig6_result.speedup(model, system, top)
            report.add_ratio_check(
                f"fig6 {model} {system} @{top} nodes", reported, measured)

    # Ordering claims of Section 5.1: Poseidon >= WFBP >= vanilla PS / TF.
    for model in ("GoogLeNet", "VGG19", "VGG19-22K"):
        report.add_ordering_check(
            f"fig5 {model}: WFBP <= Poseidon",
            fig5_result.speedup(model, "Caffe+WFBP", top),
            fig5_result.speedup(model, "Poseidon (Caffe)", top))
        report.add_ordering_check(
            f"fig5 {model}: vanilla PS <= WFBP",
            fig5_result.speedup(model, "Caffe+PS", top),
            fig5_result.speedup(model, "Caffe+WFBP", top))
    for model in ("Inception-V3", "VGG19", "VGG19-22K"):
        report.add_ordering_check(
            f"fig6 {model}: TF <= Poseidon",
            fig6_result.speedup(model, "TF", top),
            fig6_result.speedup(model, "Poseidon (TF)", top))
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(scaling_fidelity().render())


if __name__ == "__main__":  # pragma: no cover
    main()
