"""Topology sweep: every communication scheme under rack oversubscription.

The paper's testbed (and every original figure) assumes a flat
full-bisection network.  Real GPU clusters are rack-oversubscribed: the
top-of-rack uplink carries a fraction ``1/oversubscription`` of the
bandwidth its members could inject.  This experiment sweeps that factor
across every registered communication backend and shows the headline
consequence: the flat-network ranking inverts.  Schemes that fan dense
traffic across all peers (PS, SFB) degrade with the oversubscription
factor, while the topology-aware collectives -- ring all-reduce (one
boundary flow per rack) and hierarchical PS (one pre-reduced aggregate
per rack) -- hold their throughput, and Algorithm 1's per-layer choice
(now rack-aware, see :func:`repro.comm.backend.hybrid_choice`) shifts
towards them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import ClusterConfig
from repro.core.cost_model import CostModel
from repro.engines.base import CommMode
from repro.experiments.fig_backends import SCHEME_LABELS, backend_systems
from repro.experiments.report import format_series
from repro.nn.model_zoo import get_model_spec
from repro.nn.spec import LayerKind, ModelSpec
from repro.simulation.throughput import SimulationResult, simulate_system
from repro.simulation.workload import build_workload
from repro.sweep import SweepTask, run_sweep

#: Schemes that alter the computed update (ranked separately in the report:
#: 1-bit quantization buys bandwidth with convergence, Section 5.3).
APPROXIMATE_SCHEMES = frozenset(
    label for comm, label in SCHEME_LABELS if comm is CommMode.ONEBIT)

#: Cross-rack oversubscription factors swept (1 = the paper's flat network).
FIG_TOPOLOGY_OVERSUBSCRIPTION: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)

#: Models swept: one FC-heavy (hybrid choice matters) and one conv-heavy.
FIG_TOPOLOGY_MODELS: Tuple[str, ...] = ("vgg19", "googlenet")

#: Bandwidths swept (GbE): constrained and the paper's full testbed rate.
FIG_TOPOLOGY_BANDWIDTHS: Tuple[float, ...] = (10.0, 40.0)

#: Fixed cluster shape: 16 nodes in 4 racks of 4.
FIG_TOPOLOGY_NODES = 16
FIG_TOPOLOGY_RACKS = 4


def simulate_topology_point(model: ModelSpec, system, bandwidth_gbps: float,
                            oversubscription: float, nodes: int, racks: int,
                            workload=None) -> SimulationResult:
    """Simulate one (scheme, bandwidth, oversubscription) config (picklable)."""
    cluster = ClusterConfig(num_workers=nodes, bandwidth_gbps=bandwidth_gbps,
                            racks=racks, oversubscription=oversubscription)
    return simulate_system(model, system, cluster, workload=workload)


@dataclass
class TopologySweepResult:
    """Simulated speedups keyed model -> scheme label -> bandwidth -> oversub."""

    oversubscription: Sequence[float]
    bandwidths: Sequence[float]
    nodes: int
    racks: int
    results: Dict[str, Dict[str, Dict[float, Dict[float, SimulationResult]]]] = \
        field(default_factory=dict)
    #: Algorithm-1 choices per model: {model: {oversub: {fc_layer: scheme}}}.
    best_schemes: Dict[str, Dict[float, Dict[str, str]]] = field(default_factory=dict)

    def speedup(self, model: str, scheme: str, bandwidth_gbps: float,
                oversubscription: float) -> float:
        """Speedup at one point of the sweep."""
        return self.results[model][scheme][bandwidth_gbps][oversubscription].speedup

    @property
    def scheme_names(self) -> List[str]:
        """Compared scheme labels, in presentation order."""
        return [label for _, label in SCHEME_LABELS]


def _fc_best_schemes(model: ModelSpec, oversubscription: Sequence[float],
                     nodes: int, racks: int,
                     bandwidth_gbps: float) -> Dict[float, Dict[str, str]]:
    """Algorithm 1's per-FC-layer choice at every oversubscription factor."""
    choices: Dict[float, Dict[str, str]] = {}
    for oversub in oversubscription:
        cluster = ClusterConfig(num_workers=nodes, bandwidth_gbps=bandwidth_gbps,
                                racks=racks, oversubscription=oversub)
        cost_model = CostModel(cluster, batch_size=model.default_batch_size)
        choices[float(oversub)] = {
            layer.name: cost_model.best_scheme(layer).value
            for layer in model.layers
            if layer.kind is LayerKind.FC and layer.sf_decomposable
        }
    return choices


def run_fig_topology(
        oversubscription: Sequence[float] = FIG_TOPOLOGY_OVERSUBSCRIPTION,
        bandwidths: Sequence[float] = FIG_TOPOLOGY_BANDWIDTHS,
        models: Sequence[str] = FIG_TOPOLOGY_MODELS,
        nodes: int = FIG_TOPOLOGY_NODES,
        racks: int = FIG_TOPOLOGY_RACKS,
        jobs: Optional[int] = None) -> TopologySweepResult:
    """Simulate every (model, scheme, bandwidth, oversub) config in one sweep."""
    systems = backend_systems()
    specs = {model_key: get_model_spec(model_key) for model_key in models}
    workloads = {model_key: build_workload(spec)
                 for model_key, spec in specs.items()}
    tasks = [
        SweepTask(
            key=(specs[model_key].name, system.name, float(bandwidth),
                 float(oversub)),
            fn=simulate_topology_point,
            args=(specs[model_key], system, float(bandwidth), float(oversub),
                  nodes, racks),
            kwargs={"workload": workloads[model_key]},
        )
        for model_key in models
        for system in systems
        for bandwidth in bandwidths
        for oversub in oversubscription
    ]
    merged = run_sweep(tasks, jobs=jobs)
    result = TopologySweepResult(
        oversubscription=tuple(float(o) for o in oversubscription),
        bandwidths=tuple(float(b) for b in bandwidths),
        nodes=nodes, racks=racks)
    for model_key in models:
        spec = specs[model_key]
        result.results[spec.name] = {
            system.name: {
                float(bandwidth): {
                    float(oversub): merged[(spec.name, system.name,
                                            float(bandwidth), float(oversub))]
                    for oversub in oversubscription
                }
                for bandwidth in bandwidths
            }
            for system in systems
        }
        result.best_schemes[spec.name] = _fc_best_schemes(
            spec, oversubscription, nodes, racks, bandwidths[0])
    return result


def render(result: TopologySweepResult) -> str:
    """Render speedup-vs-oversubscription series plus the Algorithm-1 shift."""
    lines: List[str] = [
        f"Rack-topology sweep: {result.nodes} nodes in {result.racks} racks, "
        f"speedup vs. cross-rack oversubscription"
    ]
    oversubs = list(result.oversubscription)
    for model, schemes in result.results.items():
        for bandwidth in result.bandwidths:
            lines.append(f"  {model} @ {bandwidth:g} GbE:")
            best_label, best_speedup = "", -1.0
            for scheme, by_bandwidth in schemes.items():
                by_oversub = by_bandwidth[bandwidth]
                speedups = [by_oversub[o].speedup for o in oversubs]
                lines.append("    " + format_series(
                    f"{scheme:16s}", [f"{o:g}x" for o in oversubs], speedups))
                if scheme not in APPROXIMATE_SCHEMES and speedups[-1] > best_speedup:
                    best_label, best_speedup = scheme, speedups[-1]
            lines.append(f"    fastest exact scheme at {oversubs[-1]:g}x "
                         f"oversubscription: {best_label} "
                         f"({best_speedup:.1f}x speedup)")
        shift = result.best_schemes.get(model)
        if shift:
            lines.append(f"  {model}: Algorithm-1 choice per FC layer "
                         f"(rack-aware cost model):")
            for oversub in oversubs:
                per_layer = shift[oversub]
                rendered = " ".join(f"{layer}={scheme}"
                                    for layer, scheme in per_layer.items())
                lines.append(f"    oversub {oversub:g}x: {rendered}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig_topology()))


if __name__ == "__main__":  # pragma: no cover
    main()
