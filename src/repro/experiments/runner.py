"""Command-line runner regenerating every table and figure.

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner fig5 fig8  # a subset
    python -m repro.experiments.runner --quick    # reduced problem sizes
    python -m repro.experiments.runner --jobs 4   # 4 sweep worker processes

The runner prints each artefact's text rendering and, with ``--output``,
also writes the combined report to a file (the basis of EXPERIMENTS.md).

``--jobs`` controls how many worker processes the figure sweeps
(:mod:`repro.experiments.sweep`) distribute their independent simulation
configs over; the default is one per CPU core and ``--jobs 1`` runs
everything sequentially.  Results are merged by config key, so the report
is byte-identical for every worker count (per-experiment wall-clock goes
to the log, not the report).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    ablation,
    fidelity,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig_async,
    fig_backends,
    fig_compression,
    fig_faults,
    fig_llm,
    fig_scale,
    fig_topology,
    multigpu,
    sweep,
    table1,
    table3,
)
from repro.logging_util import enable_console_logging, get_logger
from repro.simulation.fluid import ENGINES, use_engine

LOGGER = get_logger(__name__)


def _run_table1(quick: bool) -> str:
    return table1.render(table1.run_table1())


def _run_table3(quick: bool) -> str:
    return table3.render(table3.run_table3())


def _run_fig5(quick: bool) -> str:
    nodes = (1, 4, 16) if quick else fig5.FIG5_NODE_COUNTS
    return fig5.render(fig5.run_fig5(node_counts=nodes))


def _run_fig6(quick: bool) -> str:
    nodes = (1, 4, 16) if quick else fig6.FIG6_NODE_COUNTS
    return fig6.render(fig6.run_fig6(node_counts=nodes))


def _run_fig7(quick: bool) -> str:
    return fig7.render(fig7.run_fig7())


def _run_fig8(quick: bool) -> str:
    nodes = (1, 4, 16) if quick else fig8.FIG8_NODE_COUNTS
    return fig8.render(fig8.run_fig8(node_counts=nodes))


def _run_fig9(quick: bool) -> str:
    nodes = (1, 8, 32) if quick else fig9.FIG9_NODE_COUNTS
    return fig9.render(fig9.run_fig9(node_counts=nodes))


def _run_fig10(quick: bool) -> str:
    return fig10.render(fig10.run_fig10())


def _run_fig11(quick: bool) -> str:
    iterations = 60 if quick else 300
    result = fig11.run_fig11(iterations=iterations,
                             eval_every=20 if quick else 50)
    rendering = fig11.render(result)
    scaling = fig11.cntk_scaling()
    lines = [rendering, "", "Section 5.3: VGG19 speedups, CNTK-1bit vs Poseidon"]
    for system, per_nodes in scaling.items():
        lines.append("  " + system + ": " + " ".join(
            f"{nodes}nodes={speedup:.1f}x" for nodes, speedup in sorted(per_nodes.items())))
    return "\n".join(lines)


def _run_fig_async(quick: bool) -> str:
    nodes = (8,) if quick else fig_async.FIG_ASYNC_NODE_COUNTS
    policies = (("bsp", "ssp-2", "async", "local-4") if quick
                else fig_async.FIG_ASYNC_POLICIES)
    return fig_async.render(fig_async.run_fig_async(node_counts=nodes,
                                                    policies=policies))


def _run_fig_faults(quick: bool) -> str:
    nodes = (8,) if quick else fig_faults.FIG_FAULTS_NODE_COUNTS
    mtbfs = ((None, 3600.0, 900.0) if quick
             else fig_faults.FIG_FAULTS_MTBFS)
    stragglers = (((0.0, 1.0), (0.25, 4.0)) if quick
                  else fig_faults.FIG_FAULTS_STRAGGLERS)
    policies = (("bsp", "ssp-2", "async") if quick
                else fig_faults.FIG_FAULTS_POLICIES)
    return fig_faults.render(fig_faults.run_fig_faults(
        node_counts=nodes, mtbfs=mtbfs, stragglers=stragglers,
        policies=policies))


def _run_fig_compression(quick: bool) -> str:
    nodes = (8,) if quick else fig_compression.FIG_COMPRESSION_NODE_COUNTS
    bandwidths = ((1.0, 10.0) if quick
                  else fig_compression.FIG_COMPRESSION_BANDWIDTHS)
    return fig_compression.render(fig_compression.run_fig_compression(
        node_counts=nodes, bandwidths=bandwidths))


def _run_fig_backends(quick: bool) -> str:
    nodes = (2, 8, 32) if quick else fig_backends.FIG_BACKENDS_NODE_COUNTS
    return fig_backends.render(fig_backends.run_fig_backends(node_counts=nodes))


def _run_fig_llm(quick: bool) -> str:
    models = ("nanogpt-12l",) if quick else fig_llm.FIG_LLM_MODELS
    return fig_llm.render(fig_llm.run_fig_llm(models=models))


def _run_fig_scale(quick: bool) -> str:
    nodes = (1000,) if quick else fig_scale.FIG_SCALE_NODE_COUNTS
    return fig_scale.render(fig_scale.run_fig_scale(node_counts=nodes))


def _run_fig_topology(quick: bool) -> str:
    models = ("vgg19",) if quick else fig_topology.FIG_TOPOLOGY_MODELS
    oversubs = ((1.0, 4.0, 8.0) if quick
                else fig_topology.FIG_TOPOLOGY_OVERSUBSCRIPTION)
    return fig_topology.render(fig_topology.run_fig_topology(
        oversubscription=oversubs, models=models))


def _run_multigpu(quick: bool) -> str:
    return multigpu.render(multigpu.run_multigpu())


def _run_ablation(quick: bool) -> str:
    return ablation.render(ablation.run_system_ablation())


def _run_fidelity(quick: bool) -> str:
    nodes = (1, 8, 16) if quick else (1, 8, 16, 32)
    return fidelity.scaling_fidelity(node_counts=nodes).render()


EXPERIMENTS: Dict[str, Callable[[bool], str]] = {
    "table1": _run_table1,
    "table3": _run_table3,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig_async": _run_fig_async,
    "fig_backends": _run_fig_backends,
    "fig_compression": _run_fig_compression,
    "fig_faults": _run_fig_faults,
    "fig_llm": _run_fig_llm,
    "fig_scale": _run_fig_scale,
    "fig_topology": _run_fig_topology,
    "multigpu": _run_multigpu,
    "ablation": _run_ablation,
    "fidelity": _run_fidelity,
}


def run_experiments(names: Optional[List[str]] = None, quick: bool = False,
                    jobs: Optional[int] = None,
                    engine: Optional[str] = None) -> str:
    """Run the named experiments (all of them by default); returns the report.

    Args:
        names: subset of :data:`EXPERIMENTS` keys (all when ``None``).
        quick: reduced problem sizes for a fast smoke run.
        jobs: sweep worker processes; ``None`` keeps the library default
            (sequential), ``0`` or negative means one per CPU core.  The
            report text is independent of this value.
        engine: simulation engine for every figure sweep
            (``"des"``/``"fluid"``/``"auto"``); ``None`` keeps the session
            default (the DES), under which reports are byte-identical to
            previous releases.
    """
    selected = names or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; available: {list(EXPERIMENTS)}")
    sections: List[str] = []
    with sweep.use_jobs(jobs if jobs is not None else sweep.default_jobs()):
        with use_engine(engine if engine is not None else "des"):
            for name in selected:
                start = time.time()
                rendering = EXPERIMENTS[name](quick)
                LOGGER.info("%s finished in %.1fs", name, time.time() - start)
                sections.append(f"=== {name} ===\n{rendering}")
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the Poseidon paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help=f"subset to run (default: all of {list(EXPERIMENTS)})")
    parser.add_argument("--quick", action="store_true",
                        help="reduced problem sizes for a fast smoke run")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="sweep worker processes (default: one per CPU "
                             "core; 1 = sequential)")
    parser.add_argument("--engine", choices=list(ENGINES), default=None,
                        help="simulation engine for the figure sweeps "
                             "(default: des; auto switches to the fluid "
                             "engine on large clusters)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)
    enable_console_logging()
    # repro.sweep owns the jobs policy: 0 or negative resolves to one
    # worker per CPU core inside use_jobs/resolve_jobs.
    report = run_experiments(args.experiments or None, quick=args.quick,
                             jobs=args.jobs, engine=args.engine)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
