"""Multi-GPU-per-node scaling (Section 5.1, "Multi-GPU Settings").

Poseidon collects gradients from a node's GPUs onto a leader GPU over PCIe
before anything touches the network; the paper reports linear scaling on 4
local Titan X GPUs and 32x / 28x speedups for GoogLeNet / VGG19 on four AWS
p2.8xlarge nodes (8 K80 GPUs each).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.config import ClusterConfig, TESLA_K80
from repro.engines import POSEIDON_CAFFE
from repro.experiments.report import format_table
from repro.nn.model_zoo import get_model_spec
from repro.simulation.throughput import SimulationResult, simulate_system


@dataclass
class MultiGpuResult:
    """Simulated speedups of multi-GPU configurations."""

    rows: List[Tuple[str, int, int, float]] = field(default_factory=list)
    simulations: Dict[Tuple[str, int, int], SimulationResult] = field(default_factory=dict)

    def speedup(self, model: str, nodes: int, gpus_per_node: int) -> float:
        """Speedup (vs. one GPU) of one configuration."""
        for row_model, row_nodes, row_gpus, speedup in self.rows:
            if (row_model, row_nodes, row_gpus) == (model, nodes, gpus_per_node):
                return speedup
        raise KeyError(f"no result for {model} x{nodes} nodes x{gpus_per_node} GPUs")


def run_multigpu(models: Sequence[str] = ("googlenet", "vgg19"),
                 bandwidth_gbps: float = 40.0) -> MultiGpuResult:
    """Simulate the two multi-GPU settings of Section 5.1."""
    result = MultiGpuResult()
    configurations = (
        # Single node, 1..4 local Titan X GPUs.
        [(1, gpus, None) for gpus in (1, 2, 4)]
        # Four p2.8xlarge-like nodes with 8 K80 GPUs each.
        + [(4, 8, TESLA_K80)]
    )
    for model_key in models:
        spec = get_model_spec(model_key)
        for nodes, gpus, gpu_model in configurations:
            cluster_kwargs = dict(num_workers=nodes, bandwidth_gbps=bandwidth_gbps,
                                  gpus_per_node=gpus)
            if gpu_model is not None:
                cluster_kwargs["gpu"] = gpu_model
            cluster = ClusterConfig(**cluster_kwargs)
            simulation = simulate_system(spec, POSEIDON_CAFFE, cluster)
            # Per-GPU weak scaling: total images per second over the
            # single-GPU baseline.
            total_gpus = nodes * gpus
            speedup = simulation.speedup * gpus
            result.rows.append((spec.name, nodes, gpus, speedup))
            result.simulations[(spec.name, nodes, gpus)] = simulation
    return result


def render(result: MultiGpuResult) -> str:
    """Render speedups of every configuration."""
    rows = [
        (model, nodes, gpus, nodes * gpus, speedup)
        for model, nodes, gpus, speedup in result.rows
    ]
    return format_table(
        headers=["Model", "Nodes", "GPUs/node", "Total GPUs", "Speedup"],
        rows=rows,
        title="Section 5.1: multi-GPU scaling with Poseidon (Caffe engine)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_multigpu()))


if __name__ == "__main__":  # pragma: no cover
    main()
