"""Figure 7: GPU computation vs. stall time on 8 nodes.

For Inception-V3, VGG19 and VGG19-22K under TF, TF+WFBP and Poseidon, the
paper plots the fraction of each iteration the GPU spends computing versus
waiting for parameter synchronization.  Poseidon keeps the GPU busy almost
all of the time; stock TensorFlow wastes a large fraction waiting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.config import ClusterConfig
from repro.engines import POSEIDON_TF, TF, TF_WFBP
from repro.engines.base import SystemConfig
from repro.experiments.report import format_table
from repro.nn.model_zoo import get_model_spec
from repro.simulation.throughput import SimulationResult, simulate_system

#: Models of Figure 7, keyed by registry name.
FIG7_MODELS = ("inception-v3", "vgg19", "vgg19-22k")

#: Systems of Figure 7.
FIG7_SYSTEMS: Sequence[SystemConfig] = (TF, TF_WFBP, POSEIDON_TF)


@dataclass
class StallBreakdownResult:
    """Computation/stall fractions: model -> system -> SimulationResult."""

    num_nodes: int
    bandwidth_gbps: float
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    def stall_fraction(self, model: str, system: str) -> float:
        """Stall fraction of one (model, system) pair."""
        return self.results[model][system].gpu_stall_fraction

    def busy_fraction(self, model: str, system: str) -> float:
        """Computation fraction of one (model, system) pair."""
        return self.results[model][system].gpu_busy_fraction


def run_fig7(num_nodes: int = 8, bandwidth_gbps: float = 40.0,
             models: Sequence[str] = FIG7_MODELS,
             systems: Sequence[SystemConfig] = FIG7_SYSTEMS) -> StallBreakdownResult:
    """Simulate the 8-node stall breakdown of Figure 7."""
    result = StallBreakdownResult(num_nodes=num_nodes, bandwidth_gbps=bandwidth_gbps)
    cluster = ClusterConfig(num_workers=num_nodes, bandwidth_gbps=bandwidth_gbps)
    for model_key in models:
        spec = get_model_spec(model_key)
        result.results[spec.name] = {}
        for system in systems:
            result.results[spec.name][system.name] = simulate_system(
                spec, system, cluster)
    return result


def render(result: StallBreakdownResult) -> str:
    """Render the stall/computation percentages."""
    rows: List[tuple] = []
    for model, systems in result.results.items():
        for system, sim in systems.items():
            rows.append((
                model,
                system,
                f"{sim.gpu_busy_fraction * 100:.0f}%",
                f"{sim.gpu_stall_fraction * 100:.0f}%",
            ))
    return format_table(
        headers=["Model", "System", "Computation", "Stall"],
        rows=rows,
        title=(f"Figure 7: GPU computation vs. stall time on {result.num_nodes} "
               f"nodes at {result.bandwidth_gbps:g} GbE"),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig7()))


if __name__ == "__main__":  # pragma: no cover
    main()
