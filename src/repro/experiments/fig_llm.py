"""Transformer/LLM sweep: timed per-layer scheme choice, bandwidth x topology.

The paper's Algorithm 1 was designed around CNN-era FC layers, but its
sweet spot replays directly on GPT workloads: the untied vocabulary head is
a giant ``n_embd x vocab`` FC layer whose sufficient factors are tiny next
to its dense gradient (SFB crushes PS at every swept bandwidth), while the
``n_embd x n_embd`` attention output projections sit near the crossover.
The volumetric Algorithm 1 cannot see the crossover move -- parameter
counts are bandwidth-invariant -- so this figure sweeps the *timed* variant
(:meth:`~repro.core.cost_model.CostModel.best_scheme_timed`, which adds
per-message latency and factor-reconstruction compute) across bandwidth and
rack topology, plus end-to-end DES throughput for the fixed schemes and the
hybrid.

Costing caveat (see :mod:`repro.nn.model_zoo.transformer`): Table-1 factor
costs use ``K = batch`` where one sample is one *sequence*, the same
abstraction as one image for a CNN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import ClusterConfig
from repro.core.cost_model import CostModel
from repro.engines.base import CommMode
from repro.experiments.fig_backends import backend_systems
from repro.experiments.report import format_series
from repro.nn.model_zoo import get_model_spec
from repro.nn.spec import LayerKind, ModelSpec
from repro.simulation.throughput import SimulationResult, simulate_system
from repro.simulation.workload import build_workload
from repro.sweep import SweepTask, run_sweep

#: GPT-style configs swept (both registered in the model zoo).
FIG_LLM_MODELS: Tuple[str, ...] = ("nanogpt-12l", "gpt2-small")

#: Bandwidths swept (GbE): the paper's constrained and full testbed rates.
FIG_LLM_BANDWIDTHS: Tuple[float, ...] = (10.0, 40.0)

#: Topologies swept: (label, racks, oversubscription).
FIG_LLM_TOPOLOGIES: Tuple[Tuple[str, int, float], ...] = (
    ("flat", 1, 1.0),
    ("4:1-oversub", 4, 4.0),
)

#: Fixed cluster size (the paper's testbed scale).
FIG_LLM_NODES = 16

#: Throughput systems compared end to end (subset of the backend zoo).
FIG_LLM_SYSTEM_NAMES: Tuple[str, ...] = ("PS", "SFB", "HybComm")


def llm_systems():
    """The PS / SFB / hybrid systems from the backend-comparison figure."""
    return tuple(system for system in backend_systems()
                 if system.name in FIG_LLM_SYSTEM_NAMES)


def decision_layers(model: ModelSpec) -> List[str]:
    """FC layers whose scheme choice the report shows.

    All transformer blocks share the same shapes, so block 0 stands for
    the twelve; the vocabulary head is the headline layer.
    """
    names = [layer.name for layer in model.layers
             if layer.kind is LayerKind.FC and layer.sf_decomposable]
    return [name for name in names
            if name.startswith("h0_") or not name.startswith("h")]


def simulate_llm_point(model: ModelSpec, system, bandwidth_gbps: float,
                       racks: int, oversubscription: float, nodes: int,
                       workload=None) -> SimulationResult:
    """Simulate one (model, system, bandwidth, topology) config (picklable)."""
    cluster = ClusterConfig(num_workers=nodes, bandwidth_gbps=bandwidth_gbps,
                            racks=racks, oversubscription=oversubscription)
    return simulate_system(model, system, cluster, workload=workload)


@dataclass
class LLMSweepResult:
    """Timed scheme decisions plus DES speedups for the GPT-style configs.

    ``decisions`` is keyed model -> topology label -> bandwidth -> layer;
    ``results`` is keyed model -> system label -> bandwidth -> topology label.
    """

    bandwidths: Sequence[float]
    topologies: Sequence[Tuple[str, int, float]]
    nodes: int
    decisions: Dict[str, Dict[str, Dict[float, Dict[str, str]]]] = \
        field(default_factory=dict)
    results: Dict[str, Dict[str, Dict[float, Dict[str, SimulationResult]]]] = \
        field(default_factory=dict)

    def decision(self, model: str, topology: str, bandwidth_gbps: float,
                 layer: str) -> str:
        """The timed Algorithm-1 choice at one swept point."""
        return self.decisions[model][topology][float(bandwidth_gbps)][layer]

    def speedup(self, model: str, system: str, bandwidth_gbps: float,
                topology: str) -> float:
        """DES speedup at one swept point."""
        return self.results[model][system][float(bandwidth_gbps)][topology].speedup

    def head_schemes(self, model: str, head: str = "lm_head") -> List[str]:
        """The vocabulary head's chosen scheme at every swept point."""
        return [per_layer[head]
                for by_bandwidth in self.decisions[model].values()
                for per_layer in by_bandwidth.values()]

    def flipping_layers(self, model: str, topology: str = "flat") -> List[str]:
        """Layers whose choice differs across the swept bandwidths."""
        by_bandwidth = self.decisions[model][topology]
        layers = next(iter(by_bandwidth.values())).keys()
        return [layer for layer in layers
                if len({per_layer[layer]
                        for per_layer in by_bandwidth.values()}) > 1]


def _timed_decisions(model: ModelSpec, bandwidths: Sequence[float],
                     topologies: Sequence[Tuple[str, int, float]],
                     nodes: int) -> Dict[str, Dict[float, Dict[str, str]]]:
    """best_scheme_timed for every (topology, bandwidth, decision layer)."""
    layers = decision_layers(model)
    decisions: Dict[str, Dict[float, Dict[str, str]]] = {}
    for label, racks, oversub in topologies:
        decisions[label] = {}
        for bandwidth in bandwidths:
            cluster = ClusterConfig(num_workers=nodes,
                                    bandwidth_gbps=float(bandwidth),
                                    racks=racks, oversubscription=oversub)
            cost_model = CostModel(cluster,
                                   batch_size=model.default_batch_size)
            decisions[label][float(bandwidth)] = {
                name: cost_model.best_scheme_timed(model.layer(name)).value
                for name in layers
            }
    return decisions


def run_fig_llm(models: Sequence[str] = FIG_LLM_MODELS,
                bandwidths: Sequence[float] = FIG_LLM_BANDWIDTHS,
                topologies: Sequence[Tuple[str, int, float]] = FIG_LLM_TOPOLOGIES,
                nodes: int = FIG_LLM_NODES,
                jobs: Optional[int] = None) -> LLMSweepResult:
    """Timed decisions (analytic) plus one DES sweep over the systems."""
    systems = llm_systems()
    specs = {model_key: get_model_spec(model_key) for model_key in models}
    workloads = {model_key: build_workload(spec)
                 for model_key, spec in specs.items()}
    tasks = [
        SweepTask(
            key=(specs[model_key].name, system.name, float(bandwidth), label),
            fn=simulate_llm_point,
            args=(specs[model_key], system, float(bandwidth), racks, oversub,
                  nodes),
            kwargs={"workload": workloads[model_key]},
        )
        for model_key in models
        for system in systems
        for bandwidth in bandwidths
        for label, racks, oversub in topologies
    ]
    merged = run_sweep(tasks, jobs=jobs)
    result = LLMSweepResult(
        bandwidths=tuple(float(b) for b in bandwidths),
        topologies=tuple(topologies), nodes=nodes)
    for model_key in models:
        spec = specs[model_key]
        result.decisions[spec.name] = _timed_decisions(
            spec, bandwidths, topologies, nodes)
        result.results[spec.name] = {
            system.name: {
                float(bandwidth): {
                    label: merged[(spec.name, system.name, float(bandwidth),
                                   label)]
                    for label, _, _ in topologies
                }
                for bandwidth in bandwidths
            }
            for system in systems
        }
    return result


def render(result: LLMSweepResult) -> str:
    """Render the decision grid, throughput series and headline facts."""
    lines: List[str] = [
        f"Transformer/LLM sweep: timed Algorithm-1 choice per FC layer, "
        f"{result.nodes} nodes",
        "  (Table-1 factor costs use K = batch, one sample = one sequence; "
        "see docs)",
    ]
    topo_labels = [label for label, _, _ in result.topologies]
    for model, by_topology in result.decisions.items():
        spec = get_model_spec(model)
        blocks = sum(1 for layer in spec.layers
                     if layer.name.endswith("_attn_core"))
        lines.append(
            f"  {model}: {spec.total_params / 1e6:.0f}M params, "
            f"{blocks} blocks, batch {spec.default_batch_size}")
        for topology in topo_labels:
            for bandwidth in result.bandwidths:
                per_layer = by_topology[topology][bandwidth]
                rendered = " ".join(f"{layer}={scheme}"
                                    for layer, scheme in per_layer.items())
                lines.append(f"    {topology:12s} @ {bandwidth:g} GbE: "
                             f"{rendered}")
        head = spec.layer("lm_head")
        m, n = head.fc_dims
        head_choices = set(result.head_schemes(model))
        if head_choices == {"sfb"}:
            lines.append(f"    vocab head lm_head ({m}x{n}): sfb at every "
                         f"swept bandwidth and topology")
        else:
            lines.append(f"    vocab head lm_head ({m}x{n}): "
                         f"{sorted(head_choices)}")
        flips = result.flipping_layers(model)
        if flips:
            for layer in flips:
                choices = " -> ".join(
                    by_topology["flat"][bandwidth][layer]
                    for bandwidth in result.bandwidths)
                lines.append(f"    crossover: {layer} flips {choices} across "
                             f"{result.bandwidths[0]:g} -> "
                             f"{result.bandwidths[-1]:g} GbE (flat)")
        else:
            lines.append("    no layer flips scheme across the swept "
                         "bandwidths (flat)")
    lines.append(f"  DES throughput speedup at {result.nodes} nodes:")
    for model, by_system in result.results.items():
        for system, by_bandwidth in by_system.items():
            labels, values = [], []
            for bandwidth in result.bandwidths:
                for topology in topo_labels:
                    labels.append(f"{bandwidth:g}GbE/{topology}")
                    values.append(by_bandwidth[bandwidth][topology].speedup)
            lines.append("    " + format_series(
                f"{model} {system:8s}", labels, values))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig_llm()))


if __name__ == "__main__":  # pragma: no cover
    main()
