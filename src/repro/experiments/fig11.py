"""Figure 11: exact synchronization vs. 1-bit quantization (CIFAR-10 quick).

The paper trains the CIFAR-10 quick network on 4 GPUs with Poseidon (exact
BSP synchronization) and with a Poseidon-1bit variant that quantizes FC
gradients to one bit with error feedback, and plots training loss and test
error against iterations.  Both systems have the same throughput scaling;
the quantized variant converges noticeably worse -- the paper's argument for
reducing traffic via sufficient factors (exact) instead of quantization
(approximate).

This reproduction trains a (downscaled) CIFAR-quick CNN on a synthetic
CIFAR-10-shaped dataset with the *functional* distributed runtime, so the
loss/error curves come from real SGD.  The companion ``cntk_scaling``
helper reports the simulated throughput speedups of the CNTK-1bit baseline
(Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import ClusterConfig, TrainingConfig
from repro.core.wfbp import ScheduleMode
from repro.data import make_cifar10_like, shard_dataset
from repro.engines import CNTK_1BIT, POSEIDON_CAFFE
from repro.experiments.report import format_table
from repro.nn.model_zoo import (
    build_cifar_quick_network,
    build_cifar_quick_small_network,
)
from repro.nn.model_zoo import get_model_spec
from repro.core.policy import SyncPolicy
from repro.parallel import DistributedTrainer, TrainingHistory
from repro.simulation.speedup import scaling_curve

#: The paper's Figure 11 pair: exact hybrid sync vs. 1-bit quantization.
DEFAULT_FIG11_SYSTEMS: Tuple[Tuple[str, str], ...] = (
    ("Poseidon", "hybrid"),
    ("Poseidon-1bit", "onebit"),
)


@dataclass
class Fig11Result:
    """Training histories of the exact and 1-bit runs."""

    iterations: int
    num_workers: int
    histories: Dict[str, TrainingHistory] = field(default_factory=dict)

    def final_loss(self, label: str) -> float:
        """Final training loss of one run."""
        return self.histories[label].final_loss

    def final_error(self, label: str) -> float:
        """Final test error of one run."""
        return self.histories[label].final_test_error

    def loss_curve(self, label: str) -> List[float]:
        """Per-iteration training loss of one run."""
        return self.histories[label].losses

    def error_curve(self, label: str) -> List[Tuple[int, float]]:
        """(iteration, test error) samples of one run."""
        return self.histories[label].test_errors


def run_fig11(iterations: int = 150, num_workers: int = 4, batch_size: int = 16,
              num_train: int = 800, num_test: int = 200, eval_every: int = 50,
              image_size: int = 12, learning_rate: float = 0.1,
              noise_scale: float = 2.0, seed: int = 0,
              full_size_model: bool = False,
              deterministic: bool = True,
              systems: Sequence[Tuple[str, str]] = DEFAULT_FIG11_SYSTEMS,
              policy: Union[SyncPolicy, str, None] = "bsp") -> Fig11Result:
    """Train the CIFAR-quick model with exact sync and with 1-bit quantization.

    The defaults are a deterministic configuration (seed 0) on which the
    paper's qualitative result reproduces: the exact-sync run converges to a
    low test error while the 1-bit run is visibly behind at the same
    iteration count.  At this (CPU-sized) scale the gap is sensitive to the
    random seed -- the paper demonstrates it at full CIFAR-10 scale -- so
    EXPERIMENTS.md records the comparison for this fixed configuration.

    Args:
        iterations: SGD iterations per run.
        num_workers: emulated GPUs (the paper uses 4).
        batch_size: per-worker batch size.
        num_train: synthetic training-set size.
        num_test: synthetic test-set size.
        eval_every: test-error sampling period in iterations.
        image_size: synthetic image side; 32 reproduces the full-size network.
        learning_rate: SGD learning rate.
        noise_scale: noise level of the synthetic dataset (harder data makes
            the quantization penalty visible).
        seed: dataset and initialisation seed.
        full_size_model: build the real 145K-parameter network instead of the
            downscaled variant.
        deterministic: run the trainer bit-reproducibly (ordered gradient
            reduction + fixed syncer-drain order), so consecutive fig11 runs
            -- including the Poseidon-1bit rows, whose error-feedback state
            historically drifted with thread timing -- render identically.
        systems: the compared runs as ``(label, mode)`` pairs; ``mode`` is
            any registered backend name (``ring``, ``hierps``, ...), so the
            harness can put every substrate through the same convergence
            measurement.  The default is the paper's exact-vs-1-bit pair.
        policy: synchronization policy applied to every run (``"bsp"``,
            ``"ssp-2"``, ``"async"``, ``"local-4"``, a
            :class:`~repro.core.policy.SyncPolicy`, ...), making staleness
            and sync period convergence axes.  The default (BSP) reproduces
            the historical figure bit-for-bit.
    """
    dataset = make_cifar10_like(num_train=num_train, num_test=num_test,
                                image_size=image_size, noise_scale=noise_scale,
                                seed=seed)
    shards = shard_dataset(dataset.train_images, dataset.train_labels,
                           num_workers, seed=seed)
    test_data = (dataset.test_images, dataset.test_labels)
    training = TrainingConfig(batch_size=batch_size, learning_rate=learning_rate,
                              iterations=iterations, seed=seed)

    def factory():
        if full_size_model:
            return build_cifar_quick_network(seed=seed, image_size=image_size)
        return build_cifar_quick_small_network(seed=seed, image_size=image_size)

    result = Fig11Result(iterations=iterations, num_workers=num_workers)
    for label, mode in systems:
        trainer = DistributedTrainer(
            network_factory=factory,
            num_workers=num_workers,
            train_shards=shards,
            training=training,
            mode=mode,
            schedule=ScheduleMode.WFBP,
            test_data=test_data,
            eval_every=eval_every,
            deterministic=deterministic,
            policy=policy,
        )
        result.histories[label] = trainer.train(iterations)
    return result


def policy_convergence(mode: str = "ps",
                       policies: Sequence[str] = ("bsp", "ssp-2", "async",
                                                  "local-2", "local-4"),
                       iterations: int = 150,
                       label: Optional[str] = None,
                       **kwargs) -> Fig11Result:
    """Convergence of one backend across synchronization policies.

    Trains the fig11 workload once per policy on the same backend (any
    registered name) and returns the histories keyed ``"<mode> <policy>"``,
    so staleness bound and local-SGD period become convergence axes next to
    the scheme axis.  Extra keyword arguments forward to :func:`run_fig11`.
    """
    prefix = mode if label is None else label
    result = Fig11Result(iterations=iterations,
                         num_workers=kwargs.get("num_workers", 4))
    for spec in policies:
        policy = SyncPolicy.parse(spec)
        sub = run_fig11(iterations=iterations,
                        systems=((f"{prefix} {policy}", mode),),
                        policy=policy, **kwargs)
        result.histories.update(sub.histories)
    return result


def cntk_scaling(node_counts: Sequence[int] = (8, 16, 32),
                 bandwidth_gbps: float = 40.0) -> Dict[str, Dict[int, float]]:
    """Simulated VGG19 throughput speedups: CNTK-1bit vs. full Poseidon.

    Returns:
        ``{"CNTK-1bit": {nodes: speedup}, "Poseidon": {nodes: speedup}}`` --
        the Section 5.3 comparison (paper: 5.8x / 11x / 20x for CNTK-1bit).
    """
    spec = get_model_spec("vgg19")
    cntk = scaling_curve(spec, CNTK_1BIT, node_counts=node_counts,
                         bandwidth_gbps=bandwidth_gbps)
    poseidon = scaling_curve(spec, POSEIDON_CAFFE, node_counts=node_counts,
                             bandwidth_gbps=bandwidth_gbps)
    return {
        "CNTK-1bit": {nodes: cntk.speedup_at(nodes) for nodes in node_counts},
        "Poseidon": {nodes: poseidon.speedup_at(nodes) for nodes in node_counts},
    }


def render(result: Fig11Result) -> str:
    """Render loss/error trajectories of both runs."""
    lines = [
        f"Figure 11: CIFAR-10 quick on {result.num_workers} workers, "
        f"{result.iterations} iterations (synthetic CIFAR-10 substitute)"
    ]
    sample_points = [
        index for index in range(0, result.iterations,
                                 max(1, result.iterations // 6))
    ] + [result.iterations - 1]
    rows = []
    for label, history in result.histories.items():
        losses = history.losses
        rows.append((
            label,
            *(losses[i] for i in sample_points),
        ))
    lines.append(format_table(
        headers=["Run"] + [f"loss@{i}" for i in sample_points], rows=rows))
    error_rows = []
    for label, history in result.histories.items():
        trace = " ".join(f"{it}:{err:.2f}" for it, err in history.test_errors)
        error_rows.append((label, f"{history.final_test_error:.3f}", trace))
    lines.append("")
    lines.append(format_table(
        headers=["Run", "Final test error", "Error trace (iter:err)"],
        rows=error_rows))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig11()))


if __name__ == "__main__":  # pragma: no cover
    main()
