"""Figure 8: throughput scaling under limited bandwidth (Caffe engine).

GoogLeNet is swept over 2/5/10 GbE and VGG19 / VGG19-22K over 10/20/30 GbE,
comparing Caffe+WFBP (PS only) against the full Poseidon.  This is the
experiment where HybComm matters most: with 10 GbE, a PS-only system loses
half its throughput on VGG19 while Poseidon keeps scaling almost linearly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engines import CAFFE_WFBP, POSEIDON_CAFFE
from repro.engines.base import SystemConfig
from repro.experiments.report import format_series
from repro.experiments.sweep import sweep_scaling_curves
from repro.nn.model_zoo import get_model_spec
from repro.simulation.speedup import ScalingCurve

#: (model registry key, bandwidths in GbE) pairs exactly as plotted in Figure 8.
FIG8_SWEEPS: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    ("googlenet", (2.0, 5.0, 10.0)),
    ("vgg19", (10.0, 20.0, 30.0)),
    ("vgg19-22k", (10.0, 20.0, 30.0)),
)

#: Systems compared in Figure 8.
FIG8_SYSTEMS: Sequence[SystemConfig] = (CAFFE_WFBP, POSEIDON_CAFFE)

#: Node counts on the x-axis (Figure 8 stops at 16 nodes).
FIG8_NODE_COUNTS = (1, 2, 4, 8, 16)


@dataclass
class BandwidthFigureResult:
    """Curves keyed by model -> system -> bandwidth."""

    node_counts: Sequence[int]
    curves: Dict[str, Dict[str, Dict[float, ScalingCurve]]] = field(default_factory=dict)

    def curve(self, model: str, system: str, bandwidth_gbps: float) -> ScalingCurve:
        """Curve of one (model, system, bandwidth) combination."""
        return self.curves[model][system][bandwidth_gbps]

    def speedup(self, model: str, system: str, bandwidth_gbps: float,
                nodes: int) -> float:
        """Speedup at one point of the figure."""
        return self.curve(model, system, bandwidth_gbps).speedup_at(nodes)


def run_fig8(node_counts: Sequence[int] = FIG8_NODE_COUNTS,
             sweeps: Sequence[Tuple[str, Sequence[float]]] = FIG8_SWEEPS,
             systems: Sequence[SystemConfig] = FIG8_SYSTEMS,
             jobs: Optional[int] = None) -> BandwidthFigureResult:
    """Simulate every Figure 8 series (one flat sweep over all configs)."""
    result = BandwidthFigureResult(node_counts=tuple(node_counts))
    specs = {model_key: get_model_spec(model_key) for model_key, _ in sweeps}
    combos = [(specs[model_key], system, float(bandwidth))
              for model_key, bandwidths in sweeps
              for system in systems
              for bandwidth in bandwidths]
    curves = sweep_scaling_curves(combos, node_counts, jobs=jobs)
    for model_key, bandwidths in sweeps:
        spec = specs[model_key]
        result.curves[spec.name] = {
            system.name: {
                bandwidth: curves[(spec, system, float(bandwidth))]
                for bandwidth in bandwidths
            }
            for system in systems
        }
    return result


def render(result: BandwidthFigureResult) -> str:
    """Render one series per (model, system, bandwidth)."""
    lines: List[str] = [
        "Figure 8: throughput scaling with varying network bandwidth "
        "(baseline: single-node Caffe)"
    ]
    for model, systems in result.curves.items():
        for system, by_bandwidth in systems.items():
            for bandwidth, curve in sorted(by_bandwidth.items()):
                label = f"{model:12s} {system:18s} {bandwidth:4.0f} GbE"
                lines.append("  " + format_series(
                    label, curve.node_counts, curve.speedups))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig8()))


if __name__ == "__main__":  # pragma: no cover
    main()
