"""Fault frontier: checkpoint cost vs. MTBF, and straggler masking by policy.

The paper's KV store "will regularly checkpoint current parameter states
for fault tolerance"; this experiment quantifies what that machinery costs
and when relaxed execution semantics pay off under degraded clusters.  Two
views share one sweep:

- **cost-vs-MTBF frontier** (per backend, BSP): the expected iteration-time
  overhead of checkpoint/restart running, at a fixed checkpoint interval
  and at the Young--Daly optimum ``sqrt(2*C*M)``.  Overhead must fall
  monotonically as the cluster gets healthier (MTBF grows), and the
  Young--Daly interval must never lose to a fixed one.
- **straggler masking** (PS backend, policy axis): iteration-time inflation
  when a fraction of workers runs slow.  A BSP barrier pays the slowest
  worker's full excess every iteration; ssp(s) hides stragglers that are
  under ``s`` clocks behind; fully asynchronous execution pays only the
  mean excess.

Engine agreement: the checkpoint/restart axis uses the identical closed
form in both engines (exact agreement by construction); on the straggler
axis the fluid engine's first-order model is an upper bound of the DES --
it ignores the extra communication overlap a slowed worker gains -- and
the two agree within ~30% on <= 32-node configurations (pinned by the
chaos tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.faults import fault_overhead_factor, young_daly_interval
from repro.core.policy import SyncPolicy
from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.experiments.report import format_series
from repro.experiments.sweep import sweep_scaling_curves
from repro.nn.model_zoo import get_model_spec
from repro.simulation.speedup import ScalingCurve

#: Backends on the cost-vs-MTBF frontier (the three substrate families).
FIG_FAULTS_SCHEMES: Tuple[Tuple[CommMode, str], ...] = (
    (CommMode.PS, "PS"),
    (CommMode.ONEBIT, "1-bit PS"),
    (CommMode.RING, "Ring-AllReduce"),
)

#: MTBF axis (seconds), flaky to healthy.  ``None`` = failures never happen
#: (the fault-free baseline every overhead is measured against).
FIG_FAULTS_MTBFS: Tuple[Optional[float], ...] = (
    None, 86_400.0, 21_600.0, 3_600.0, 900.0)

#: Checkpoint intervals (seconds); ``None`` = the Young--Daly optimum.
FIG_FAULTS_INTERVALS: Tuple[Optional[float], ...] = (None, 120.0)

#: Seconds one checkpoint costs (a full parameter snapshot to stable
#: storage; order of a VGG19 parameter set over a 10 GbE store link).
FIG_FAULTS_CHECKPOINT_COST: float = 5.0

#: Straggler severities swept: (fraction of workers slowed, slowdown factor).
FIG_FAULTS_STRAGGLERS: Tuple[Tuple[float, float], ...] = (
    (0.0, 1.0), (0.125, 2.0), (0.25, 4.0))

#: Policies on the masking view: the consistency gate is what determines
#: how much of a straggler's excess the cluster pays.
FIG_FAULTS_POLICIES: Tuple[str, ...] = ("bsp", "ssp-2", "async", "local-4")

#: Node counts on the x-axis (kept <= 32: the engine-agreement envelope).
FIG_FAULTS_NODE_COUNTS: Tuple[int, ...] = (8, 16)

#: Bandwidth of every configuration (GbE).
FIG_FAULTS_BANDWIDTH: float = 10.0

#: Model swept: FC-heavy, so backend choice moves bytes too.
FIG_FAULTS_MODEL = "vgg19"


def _fmt_mtbf(mtbf: Optional[float]) -> str:
    return "inf" if mtbf is None else f"{mtbf:g}s"


def _fmt_interval(interval: Optional[float]) -> str:
    return "yd" if interval is None else f"{interval:g}s"


def _base_system(name: str, comm: CommMode) -> SystemConfig:
    return SystemConfig(
        name=name,
        engine="poseidon",
        schedule=ScheduleMode.WFBP,
        partitioning=Partitioning.FINE,
        comm=comm,
        overlap_pull=True,
        overlap_host_copy=True,
    )


def frontier_systems(schemes: Sequence[Tuple[CommMode, str]] = FIG_FAULTS_SCHEMES,
                     mtbfs: Sequence[Optional[float]] = FIG_FAULTS_MTBFS,
                     intervals: Sequence[Optional[float]] = FIG_FAULTS_INTERVALS,
                     checkpoint_cost: float = FIG_FAULTS_CHECKPOINT_COST
                     ) -> Tuple[SystemConfig, ...]:
    """One BSP system per (backend, MTBF, checkpoint interval) point."""
    systems: List[SystemConfig] = []
    for comm, label in schemes:
        for mtbf in mtbfs:
            for interval in intervals:
                name = (f"{label} mtbf={_fmt_mtbf(mtbf)} "
                        f"ckpt={_fmt_interval(interval)}")
                systems.append(_base_system(name, comm).with_faults(
                    mtbf_seconds=mtbf,
                    checkpoint_interval_seconds=interval,
                    checkpoint_cost_seconds=checkpoint_cost))
    return tuple(systems)


def masking_systems(policies: Sequence[str] = FIG_FAULTS_POLICIES,
                    stragglers: Sequence[Tuple[float, float]] = FIG_FAULTS_STRAGGLERS
                    ) -> Tuple[SystemConfig, ...]:
    """One PS system per (policy, straggler severity) point."""
    systems: List[SystemConfig] = []
    for spec in policies:
        policy = SyncPolicy.parse(spec)
        for fraction, factor in stragglers:
            name = f"PS {policy} slow={fraction:g}x{factor:g}"
            systems.append(_base_system(name, CommMode.PS)
                           .with_policy(policy)
                           .with_faults(straggler_fraction=fraction,
                                        straggler_factor=factor))
    return tuple(systems)


@dataclass
class FaultSweepResult:
    """Both views of the fault sweep, keyed back by their sweep axes."""

    node_counts: Sequence[int]
    mtbfs: Sequence[Optional[float]]
    intervals: Sequence[Optional[float]]
    stragglers: Sequence[Tuple[float, float]]
    policies: Sequence[str]
    checkpoint_cost: float = FIG_FAULTS_CHECKPOINT_COST
    #: scheme label -> (mtbf, interval) -> curve
    frontier: Dict[str, Dict[Tuple[Optional[float], Optional[float]],
                             ScalingCurve]] = field(default_factory=dict)
    #: policy spec -> (fraction, factor) -> curve
    masking: Dict[str, Dict[Tuple[float, float], ScalingCurve]] = field(
        default_factory=dict)

    def _at(self, curve: ScalingCurve, nodes: int) -> float:
        return curve.results[curve.node_counts.index(nodes)].iteration_seconds

    def overhead(self, scheme: str, mtbf: Optional[float],
                 interval: Optional[float], nodes: int) -> float:
        """Iteration-time factor vs. the scheme's fault-free baseline."""
        baseline = self._at(self.frontier[scheme][(None, self.intervals[0])],
                            nodes)
        return self._at(self.frontier[scheme][(mtbf, interval)],
                        nodes) / baseline

    def mtbf_frontier(self, scheme: str, interval: Optional[float],
                      nodes: int) -> List[Tuple[Optional[float], float]]:
        """(MTBF, overhead factor) pairs, flakiest cluster first."""
        axis = sorted((m for m in self.mtbfs if m is not None))
        return [(mtbf, self.overhead(scheme, mtbf, interval, nodes))
                for mtbf in axis]

    def straggler_slowdown(self, policy: str,
                           straggler: Tuple[float, float],
                           nodes: int) -> float:
        """Iteration-time inflation of one policy under one severity."""
        baseline = self._at(self.masking[policy][self.stragglers[0]], nodes)
        return self._at(self.masking[policy][straggler], nodes) / baseline

    @property
    def scheme_names(self) -> List[str]:
        """Frontier scheme labels, in presentation order."""
        return list(self.frontier)


def run_fig_faults(node_counts: Sequence[int] = FIG_FAULTS_NODE_COUNTS,
                   schemes: Sequence[Tuple[CommMode, str]] = FIG_FAULTS_SCHEMES,
                   mtbfs: Sequence[Optional[float]] = FIG_FAULTS_MTBFS,
                   intervals: Sequence[Optional[float]] = FIG_FAULTS_INTERVALS,
                   stragglers: Sequence[Tuple[float, float]] = FIG_FAULTS_STRAGGLERS,
                   policies: Sequence[str] = FIG_FAULTS_POLICIES,
                   model: str = FIG_FAULTS_MODEL,
                   bandwidth: float = FIG_FAULTS_BANDWIDTH,
                   jobs: Optional[int] = None) -> FaultSweepResult:
    """Simulate both fault views in one flat sweep."""
    spec = get_model_spec(model)
    frontier = frontier_systems(schemes, mtbfs, intervals)
    masking = masking_systems(policies, stragglers)
    combos = [(spec, system, float(bandwidth))
              for system in frontier + masking]
    curves = sweep_scaling_curves(combos, node_counts, jobs=jobs)
    result = FaultSweepResult(node_counts=tuple(node_counts),
                              mtbfs=tuple(mtbfs), intervals=tuple(intervals),
                              stragglers=tuple(stragglers),
                              policies=tuple(policies))
    for comm, label in schemes:
        by_point: Dict[Tuple[Optional[float], Optional[float]],
                       ScalingCurve] = {}
        for mtbf in mtbfs:
            for interval in intervals:
                name = (f"{label} mtbf={_fmt_mtbf(mtbf)} "
                        f"ckpt={_fmt_interval(interval)}")
                system = next(s for s in frontier if s.name == name)
                by_point[(mtbf, interval)] = curves[(spec, system,
                                                     float(bandwidth))]
        result.frontier[label] = by_point
    for policy_spec in policies:
        policy = SyncPolicy.parse(policy_spec)
        by_severity: Dict[Tuple[float, float], ScalingCurve] = {}
        for fraction, factor in stragglers:
            name = f"PS {policy} slow={fraction:g}x{factor:g}"
            system = next(s for s in masking if s.name == name)
            by_severity[(fraction, factor)] = curves[(spec, system,
                                                      float(bandwidth))]
        result.masking[policy_spec] = by_severity
    return result


def render(result: FaultSweepResult) -> str:
    """Frontier and masking views as report text."""
    lines: List[str] = [
        "Fault frontier: checkpoint cost vs. MTBF, straggler masking by policy"
    ]
    nodes = max(result.node_counts)
    cost = result.checkpoint_cost
    lines.append(
        f"  iteration-time overhead factor at {nodes} nodes "
        f"(checkpoint cost C={cost:g}s):")
    mtbf_axis = sorted(m for m in result.mtbfs if m is not None)
    labels = [_fmt_mtbf(m) for m in mtbf_axis]
    for scheme in result.scheme_names:
        for interval in result.intervals:
            values = [result.overhead(scheme, mtbf, interval, nodes)
                      for mtbf in mtbf_axis]
            tag = f"{scheme:16s} ckpt={_fmt_interval(interval):5s}"
            lines.append("    " + format_series(tag, labels, values,
                                                y_format="{:.3f}"))
    lines.append("  Young--Daly optimal intervals (sqrt(2*C*M)):")
    lines.append("    " + format_series(
        f"{'interval (s)':16s}", labels,
        [young_daly_interval(cost, m) for m in mtbf_axis],
        y_format="{:.0f}"))
    lines.append("    " + format_series(
        f"{'model factor':16s}", labels,
        [fault_overhead_factor(m, None, cost) for m in mtbf_axis],
        y_format="{:.3f}"))
    lines.append(
        f"  straggler slowdown factor at {nodes} nodes (PS, by policy):")
    severities = [f"{f:g}x{k:g}" for f, k in result.stragglers]
    for policy in result.policies:
        values = [result.straggler_slowdown(policy, severity, nodes)
                  for severity in result.stragglers]
        lines.append("    " + format_series(f"{policy:16s}", severities,
                                            values, y_format="{:.3f}"))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig_faults()))


if __name__ == "__main__":  # pragma: no cover
    main()
