"""Plain-text table rendering shared by the experiment modules."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None, float_format: str = "{:.2f}") -> str:
    """Render a fixed-width text table.

    Args:
        headers: column headers.
        rows: row values; floats are formatted with ``float_format``, other
            values with ``str``.
        title: optional title line printed above the table.
        float_format: format spec applied to float cells.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered_rows: List[List[str]] = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line([str(h) for h in headers]))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_series(label: str, xs: Sequence[object], ys: Sequence[float],
                  y_format: str = "{:.1f}") -> str:
    """Render one figure series as ``label: x1=y1 x2=y2 ...``."""
    pairs = " ".join(
        f"{x}={y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"


def ratio_string(measured: float, reported: Optional[float]) -> str:
    """Render a measured value next to the paper's reported value."""
    if reported is None:
        return f"{measured:.2f} (paper: n/a)"
    return f"{measured:.2f} (paper: {reported:.2f})"
