"""Table 1: analytic communication cost of PS, SFB and Adam.

Reproduces the worked example of Section 3.2 (a 4096x4096 FC layer, batch
size 32, 8 workers and 8 server shards) and, more generally, evaluates the
cost model over sweeps of the matrix shape, batch size and cluster size so
the SFB/PS crossover can be inspected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.config import ClusterConfig, TrainingConfig
from repro.core.cost_model import (
    CommScheme,
    adam_combined_cost,
    adam_server_cost,
    adam_worker_cost,
    ps_combined_cost,
    ps_server_cost,
    ps_worker_cost,
    sfb_worker_cost,
)
from repro.experiments import paper_reference
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Table1Row:
    """Costs (millions of parameters) of one strategy for one configuration."""

    method: str
    server: float
    worker: float
    server_and_worker: float


@dataclass
class Table1Result:
    """The rendered cost table plus the Algorithm-1 decision."""

    m: int
    n: int
    batch_size: int
    num_workers: int
    num_servers: int
    rows: List[Table1Row] = field(default_factory=list)
    best_scheme: CommScheme = CommScheme.PS

    def row(self, method: str) -> Table1Row:
        """Look a strategy's row up by name."""
        for entry in self.rows:
            if entry.method == method:
                return entry
        raise KeyError(f"no row for method {method!r}")


def run_table1(m: int = 4096, n: int = 4096, batch_size: int = 32,
               num_workers: int = 8, num_servers: int = 8) -> Table1Result:
    """Evaluate Table 1 for one FC layer configuration."""
    to_millions = 1e-6
    rows = [
        Table1Row(
            method="PS",
            server=ps_server_cost(m, n, num_workers, num_servers) * to_millions,
            worker=ps_worker_cost(m, n) * to_millions,
            server_and_worker=ps_combined_cost(m, n, num_workers, num_servers) * to_millions,
        ),
        Table1Row(
            method="SFB",
            server=float("nan"),
            worker=sfb_worker_cost(m, n, batch_size, num_workers) * to_millions,
            server_and_worker=sfb_worker_cost(m, n, batch_size, num_workers) * to_millions,
        ),
        Table1Row(
            method="Adam (max)",
            server=adam_server_cost(m, n, batch_size, num_workers) * to_millions,
            worker=adam_worker_cost(m, n, batch_size) * to_millions,
            server_and_worker=adam_combined_cost(m, n, batch_size, num_workers) * to_millions,
        ),
    ]
    sfb = sfb_worker_cost(m, n, batch_size, num_workers)
    ps = ps_combined_cost(m, n, num_workers, num_servers)
    return Table1Result(
        m=m, n=n, batch_size=batch_size,
        num_workers=num_workers, num_servers=num_servers,
        rows=rows,
        best_scheme=CommScheme.SFB if sfb <= ps else CommScheme.PS,
    )


def crossover_batch_size(m: int, n: int, num_workers: int, num_servers: int,
                         max_batch: int = 4096) -> int:
    """Smallest batch size at which PS becomes cheaper than SFB for the layer.

    Returns ``max_batch + 1`` if SFB stays cheaper over the whole range.
    """
    for batch in range(1, max_batch + 1):
        sfb = sfb_worker_cost(m, n, batch, num_workers)
        ps = ps_combined_cost(m, n, num_workers, num_servers)
        if sfb > ps:
            return batch
    return max_batch + 1


def sweep_cluster_sizes(m: int = 4096, n: int = 4096, batch_size: int = 32,
                        cluster_sizes: Sequence[int] = (2, 4, 8, 16, 32, 64)
                        ) -> Dict[int, Table1Result]:
    """Table 1 evaluated across cluster sizes (workers == servers)."""
    return {
        p: run_table1(m, n, batch_size, num_workers=p, num_servers=p)
        for p in cluster_sizes
    }


def render(result: Table1Result) -> str:
    """Render the table with the paper's worked-example comparison appended."""
    title = (
        f"Table 1: cost of synchronizing a {result.m}x{result.n} FC layer "
        f"(millions of parameters; K={result.batch_size}, "
        f"P1={result.num_workers}, P2={result.num_servers})"
    )
    table = format_table(
        headers=["Method", "Server", "Worker", "Server & Worker"],
        rows=[
            (row.method, row.server, row.worker, row.server_and_worker)
            for row in result.rows
        ],
        title=title,
    )
    reference = paper_reference.TABLE1_EXAMPLE
    footer = (
        f"\nBestScheme choice: {result.best_scheme.value.upper()}"
        f"\nPaper worked example: PS worker {reference['ps_worker_millions']:.0f}M, "
        f"combined {reference['ps_combined_millions']:.1f}M, "
        f"SFB {reference['sfb_worker_millions']:.1f}M"
    )
    return table + footer


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
