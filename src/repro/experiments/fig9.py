"""Figure 9: ResNet-152 throughput scaling and statistical convergence.

Panel (a): speedup vs. number of nodes for Poseidon-TensorFlow against stock
TensorFlow.  Panel (b): top-1 error vs. epoch for 8/16/32 nodes -- Poseidon's
synchronous training reaches the reported 0.24 error within ~90 epochs on 16
and 32 nodes, so time-to-accuracy scales with throughput.

The throughput panel uses the cluster simulator; the convergence panel uses
the calibrated learning-curve model of
:mod:`repro.simulation.convergence` (see DESIGN.md for the substitution
rationale -- ImageNet-scale ResNet training is not runnable here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engines import POSEIDON_TF, TF
from repro.experiments.report import format_series, format_table
from repro.experiments.sweep import sweep_scaling_curves
from repro.nn.model_zoo import get_model_spec
from repro.simulation.convergence import (
    ConvergenceCurve,
    RESNET152_FINAL_ERROR,
    resnet152_error_curve,
    time_to_error_hours,
)
from repro.simulation.speedup import ScalingCurve

#: Node counts of panel (a).
FIG9_NODE_COUNTS = (1, 2, 4, 8, 16, 32)

#: Node counts of panel (b).
FIG9_CONVERGENCE_NODES = (8, 16, 32)


@dataclass
class Fig9Result:
    """Throughput curves plus convergence curves."""

    throughput: Dict[str, ScalingCurve] = field(default_factory=dict)
    convergence: Dict[int, ConvergenceCurve] = field(default_factory=dict)
    time_to_error_hours: Dict[int, Optional[float]] = field(default_factory=dict)
    target_error: float = RESNET152_FINAL_ERROR

    def speedup(self, system: str, nodes: int) -> float:
        """Panel (a) speedup for one system at one cluster size."""
        return self.throughput[system].speedup_at(nodes)

    def epochs_to_target(self, nodes: int) -> Optional[float]:
        """Panel (b): epochs needed to reach the target error."""
        return self.convergence[nodes].epochs_to_reach(self.target_error + 0.01)


def run_fig9(node_counts: Sequence[int] = FIG9_NODE_COUNTS,
             convergence_nodes: Sequence[int] = FIG9_CONVERGENCE_NODES,
             epochs: int = 120,
             bandwidth_gbps: float = 40.0,
             jobs: Optional[int] = None) -> Fig9Result:
    """Simulate both panels of Figure 9.

    Panel (a)'s (system, nodes) configs run as one flat sweep; panel (b)'s
    convergence model is analytic and stays in-process.
    """
    spec = get_model_spec("resnet-152")
    result = Fig9Result()
    systems = (POSEIDON_TF, TF)
    combos = [(spec, system, bandwidth_gbps) for system in systems]
    curves = sweep_scaling_curves(combos, node_counts, jobs=jobs)
    for system in systems:
        result.throughput[system.name] = curves[(spec, system, bandwidth_gbps)]
    for nodes in convergence_nodes:
        result.convergence[nodes] = resnet152_error_curve(nodes, epochs=epochs)
        poseidon_curve = result.throughput[POSEIDON_TF.name]
        try:
            iteration_seconds = poseidon_curve.results[
                poseidon_curve.node_counts.index(nodes)].iteration_seconds
        except ValueError:
            iteration_seconds = None
        result.time_to_error_hours[nodes] = (
            time_to_error_hours(nodes, iteration_seconds)
            if iteration_seconds is not None else None
        )
    return result


def render(result: Fig9Result) -> str:
    """Render both panels as text."""
    lines: List[str] = ["Figure 9(a): ResNet-152 throughput speedup"]
    for system, curve in result.throughput.items():
        lines.append("  " + format_series(
            f"{system:14s}", curve.node_counts, curve.speedups))
    lines.append("")
    lines.append("Figure 9(b): top-1 error vs. epoch (calibrated convergence model)")
    rows = []
    for nodes, curve in sorted(result.convergence.items()):
        epochs_needed = result.epochs_to_target(nodes)
        hours = result.time_to_error_hours.get(nodes)
        rows.append((
            f"{nodes} nodes",
            curve.final_error,
            epochs_needed if epochs_needed is not None else "not reached",
            f"{hours:.1f} h" if hours is not None else "n/a",
        ))
    lines.append(format_table(
        headers=["Cluster", "Final error", "Epochs to ~0.25", "Time to accuracy"],
        rows=rows))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig9()))


if __name__ == "__main__":  # pragma: no cover
    main()
