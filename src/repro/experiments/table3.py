"""Table 3: the networks used in the evaluation.

Regenerates the model-statistics table from the model zoo and compares the
parameter counts against the paper's reported values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments import paper_reference
from repro.experiments.report import format_table
from repro.nn.model_zoo import get_model_spec
from repro.nn.spec import ModelSpec

#: Mapping from the paper's Table 3 row names to model-zoo registry keys.
TABLE3_MODEL_KEYS = {
    "CIFAR-10 quick": "cifar10-quick",
    "GoogLeNet": "googlenet",
    "Inception-V3": "inception-v3",
    "VGG19": "vgg19",
    "VGG19-22K": "vgg19-22k",
    "ResNet-152": "resnet-152",
}


@dataclass(frozen=True)
class Table3Row:
    """One model's statistics, measured and as reported."""

    model: str
    params_millions: float
    reported_params_millions: Optional[float]
    dataset: str
    batch_size: int
    fc_fraction: float
    num_param_layers: int

    @property
    def relative_error(self) -> Optional[float]:
        """Relative deviation of the measured parameter count from the paper's."""
        if not self.reported_params_millions:
            return None
        return (self.params_millions - self.reported_params_millions) \
            / self.reported_params_millions


@dataclass
class Table3Result:
    """All rows of the regenerated Table 3."""

    rows: List[Table3Row] = field(default_factory=list)

    def row(self, model: str) -> Table3Row:
        """Look up a model's row by its paper name."""
        for entry in self.rows:
            if entry.model == model:
                return entry
        raise KeyError(f"no Table 3 row for {model!r}")


def run_table3() -> Table3Result:
    """Collect statistics for every Table 3 model from the model zoo."""
    result = Table3Result()
    for paper_name, registry_key in TABLE3_MODEL_KEYS.items():
        spec: ModelSpec = get_model_spec(registry_key)
        reported = paper_reference.TABLE3_MODELS.get(paper_name)
        result.rows.append(
            Table3Row(
                model=paper_name,
                params_millions=spec.total_params / 1e6,
                reported_params_millions=reported[0] if reported else None,
                dataset=spec.dataset,
                batch_size=spec.default_batch_size,
                fc_fraction=spec.fc_param_fraction,
                num_param_layers=len(spec.parameter_layers()),
            )
        )
    return result


def render(result: Table3Result) -> str:
    """Render the regenerated Table 3."""
    rows = [
        (
            row.model,
            row.params_millions,
            row.reported_params_millions if row.reported_params_millions else "n/a",
            row.dataset,
            row.batch_size,
            f"{row.fc_fraction * 100:.0f}%",
            row.num_param_layers,
        )
        for row in result.rows
    ]
    return format_table(
        headers=["Model", "Params (M)", "Paper (M)", "Dataset", "Batch",
                 "FC share", "Param layers"],
        rows=rows,
        title="Table 3: neural networks used for evaluation",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_table3()))


if __name__ == "__main__":  # pragma: no cover
    main()
