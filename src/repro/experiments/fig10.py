"""Figure 10: per-node communication load for VGG19 on 8 nodes.

The paper monitors the network traffic of each machine while training VGG19
with three strategies: TF-WFBP (dense PS with balanced KV partitioning),
Adam (SF push / full-matrix pull, which overloads the shard owning each FC
layer) and Poseidon (balanced and small).  The figure shows one bar per node
in Gb per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro import units
from repro.config import ClusterConfig
from repro.engines import ADAM_TF, POSEIDON_TF, TF_WFBP
from repro.engines.base import SystemConfig
from repro.experiments.report import format_table
from repro.nn.model_zoo import get_model_spec
from repro.simulation.throughput import SimulationResult, simulate_system

#: Systems compared in Figure 10.
FIG10_SYSTEMS: Sequence[SystemConfig] = (TF_WFBP, ADAM_TF, POSEIDON_TF)


@dataclass
class TrafficResult:
    """Per-node traffic (gigabits per iteration) for each system."""

    model: str
    num_nodes: int
    per_node_gbits: Dict[str, List[float]] = field(default_factory=dict)
    simulations: Dict[str, SimulationResult] = field(default_factory=dict)

    def imbalance(self, system: str) -> float:
        """Max / mean per-node traffic (1.0 = perfectly balanced)."""
        loads = self.per_node_gbits[system]
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0

    def mean_gbits(self, system: str) -> float:
        """Mean per-node traffic of one system."""
        loads = self.per_node_gbits[system]
        return sum(loads) / len(loads)

    def max_gbits(self, system: str) -> float:
        """Peak per-node traffic of one system (the bursty node)."""
        return max(self.per_node_gbits[system])


def run_fig10(model_key: str = "vgg19", num_nodes: int = 8,
              bandwidth_gbps: float = 40.0,
              systems: Sequence[SystemConfig] = FIG10_SYSTEMS) -> TrafficResult:
    """Measure per-node traffic for the three systems of Figure 10."""
    spec = get_model_spec(model_key)
    cluster = ClusterConfig(num_workers=num_nodes, bandwidth_gbps=bandwidth_gbps)
    result = TrafficResult(model=spec.name, num_nodes=num_nodes)
    for system in systems:
        simulation = simulate_system(spec, system, cluster)
        gbits = [
            units.bytes_to_bits(nbytes) / units.GBIT
            for nbytes in simulation.per_node_traffic_bytes
        ]
        result.per_node_gbits[system.name] = gbits
        result.simulations[system.name] = simulation
    return result


def render(result: TrafficResult) -> str:
    """Render per-node bars plus balance statistics."""
    rows = []
    for system, loads in result.per_node_gbits.items():
        rows.append((
            system,
            result.mean_gbits(system),
            result.max_gbits(system),
            f"{result.imbalance(system):.2f}x",
            " ".join(f"{load:.1f}" for load in loads),
        ))
    return format_table(
        headers=["System", "Mean Gb/iter", "Max Gb/iter", "Imbalance",
                 "Per-node Gb/iter"],
        rows=rows,
        title=(f"Figure 10: per-node communication load, {result.model} on "
               f"{result.num_nodes} nodes"),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig10()))


if __name__ == "__main__":  # pragma: no cover
    main()
