"""Compression zoo: wire compressors x bucketing x backend x bandwidth.

The paper ships exactly one lossy wire format -- CNTK-style 1-bit
quantization, burned into its own PS backend.  This experiment treats the
wire format as an orthogonal axis instead: the same dense-gradient
backends (sharded PS, ring all-reduce) are swept across the pluggable
compressor registry (``none``, ``topk(k)`` with error feedback,
``powersgd(r)``) and across the bucketing axis (per-layer messages vs.
fixed-byte fused buckets), at several bandwidths.  Two structural facts
should be visible in any engine:

- compression only matters where the network is the bottleneck: at
  constrained bandwidth the compressed variants separate sharply, at
  ample bandwidth every variant saturates at the compute-bound rate;
- an aggressive sparsifier on a bandwidth-optimal substrate beats the
  paper's dense 1-bit PS at constrained bandwidth: ring+topk(0.01) ships
  ~4x less traffic per node than 1-bit PS and has no central bottleneck,
  which is the crossover pinned by ``tests/test_fig_compression.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.experiments.report import format_series
from repro.experiments.sweep import sweep_scaling_curves
from repro.nn.model_zoo import get_model_spec
from repro.simulation.speedup import ScalingCurve

#: One swept variant: (label, comm mode, compressor spec, bucket bytes).
Variant = Tuple[str, CommMode, str, Optional[int]]

#: Bucket size used by the bucketed variants (4 MB, NCCL/DDP's default
#: order of magnitude).
FIG_COMPRESSION_BUCKET_BYTES: int = 4 * 1024 * 1024

#: Variants swept.  Dense baselines bracket the zoo: plain PS, the paper's
#: 1-bit PS backend (wire format burned in), and dense ring.  The
#: compressed variants put ``topk``/``powersgd`` on both dense-gradient
#: substrates, and the bucketed rows isolate the granularity axis.
FIG_COMPRESSION_VARIANTS: Tuple[Variant, ...] = (
    ("PS dense", CommMode.PS, "none", None),
    ("PS dense +bucket", CommMode.PS, "none", FIG_COMPRESSION_BUCKET_BYTES),
    ("PS topk(0.01)", CommMode.PS, "topk(0.01)", None),
    ("PS powersgd(4)", CommMode.PS, "powersgd(4)", None),
    ("1-bit PS", CommMode.ONEBIT, "none", None),
    ("Ring dense", CommMode.RING, "none", None),
    ("Ring topk(0.01)", CommMode.RING, "topk(0.01)", None),
    ("Ring topk(0.01) +bucket", CommMode.RING, "topk(0.01)",
     FIG_COMPRESSION_BUCKET_BYTES),
)

#: Bandwidths swept (GbE): constrained (compression decides), the paper's
#: cluster fabric, and an ample link (everything compute-bound).
FIG_COMPRESSION_BANDWIDTHS: Tuple[float, ...] = (1.0, 10.0, 40.0)

#: Node counts on the x-axis.
FIG_COMPRESSION_NODE_COUNTS: Tuple[int, ...] = (8, 16)

#: Model swept: FC-heavy, so the compressor choice actually moves bytes.
FIG_COMPRESSION_MODEL = "vgg19"

#: The crossover pinned in the rendering: the sparsified ring variant
#: against the paper's 1-bit PS, judged at the most constrained bandwidth.
_CROSSOVER: Tuple[str, str] = ("Ring topk(0.01)", "1-bit PS")


def variant_systems(variants: Sequence[Variant] = FIG_COMPRESSION_VARIANTS
                    ) -> Tuple[SystemConfig, ...]:
    """One system per variant, Poseidon client, coarse partitioning.

    Coarse per-tensor placement is the partitioning the wire-compression
    axes are defined over (a lossy payload cannot be split into fixed-size
    KV pairs), so every variant -- including the dense baselines -- uses it.
    """
    systems: List[SystemConfig] = []
    for label, comm, compressor, bucket_bytes in variants:
        systems.append(SystemConfig(
            name=label,
            engine="poseidon",
            schedule=ScheduleMode.WFBP,
            partitioning=Partitioning.COARSE,
            comm=comm,
            overlap_pull=True,
            overlap_host_copy=True,
        ).with_compression(compressor, bucket_bytes))
    return tuple(systems)


@dataclass
class CompressionSweepResult:
    """Curves keyed by variant label -> bandwidth."""

    node_counts: Sequence[int]
    bandwidths: Sequence[float]
    variants: Sequence[Variant]
    curves: Dict[str, Dict[float, ScalingCurve]] = field(default_factory=dict)

    def curve(self, label: str, bandwidth_gbps: float) -> ScalingCurve:
        """Curve of one (variant, bandwidth) combination."""
        return self.curves[label][bandwidth_gbps]

    def throughput(self, label: str, bandwidth_gbps: float,
                   nodes: int) -> float:
        """Images/s at one sweep point."""
        curve = self.curve(label, bandwidth_gbps)
        result = curve.results[curve.node_counts.index(nodes)]
        return result.throughput_images_per_sec

    def traffic_gbits(self, label: str, bandwidth_gbps: float,
                      nodes: int) -> float:
        """Mean per-node traffic (gigabits/iteration) at one sweep point."""
        curve = self.curve(label, bandwidth_gbps)
        result = curve.results[curve.node_counts.index(nodes)]
        return result.mean_traffic_gbits

    def crossover(self, nodes: int) -> Tuple[str, str, float, float, float]:
        """(winner, loser, winner images/s, loser images/s, bandwidth).

        Judged at the most constrained swept bandwidth, where the wire
        format dominates the iteration time.
        """
        bandwidth = min(self.bandwidths)
        sparse, onebit = _CROSSOVER
        sparse_tput = self.throughput(sparse, bandwidth, nodes)
        onebit_tput = self.throughput(onebit, bandwidth, nodes)
        if sparse_tput >= onebit_tput:
            return sparse, onebit, sparse_tput, onebit_tput, bandwidth
        return onebit, sparse, onebit_tput, sparse_tput, bandwidth

    @property
    def variant_labels(self) -> List[str]:
        """Swept variant labels, in presentation order."""
        return list(self.curves)


def run_fig_compression(
        node_counts: Sequence[int] = FIG_COMPRESSION_NODE_COUNTS,
        bandwidths: Sequence[float] = FIG_COMPRESSION_BANDWIDTHS,
        variants: Sequence[Variant] = FIG_COMPRESSION_VARIANTS,
        model: str = FIG_COMPRESSION_MODEL,
        jobs: Optional[int] = None) -> CompressionSweepResult:
    """Simulate every (variant, bandwidth, nodes) config in one sweep."""
    spec = get_model_spec(model)
    systems = variant_systems(variants)
    combos = [(spec, system, float(bandwidth))
              for system in systems
              for bandwidth in bandwidths]
    curves = sweep_scaling_curves(combos, node_counts, jobs=jobs)
    result = CompressionSweepResult(node_counts=tuple(node_counts),
                                    bandwidths=tuple(bandwidths),
                                    variants=tuple(variants))
    for system in systems:
        result.curves[system.name] = {
            bandwidth: curves[(spec, system, float(bandwidth))]
            for bandwidth in bandwidths
        }
    return result


def render(result: CompressionSweepResult) -> str:
    """Throughput and traffic views, one series per (variant, bandwidth)."""
    lines: List[str] = [
        "Compression zoo: compressor x bucketing x backend x bandwidth"
    ]
    nodes = max(result.node_counts)
    lines.append(f"  throughput (images/s) at {nodes} nodes, by bandwidth:")
    for label in result.variant_labels:
        bandwidths = list(result.bandwidths)
        values = [result.throughput(label, bandwidth, nodes)
                  for bandwidth in bandwidths]
        xs = [f"{bandwidth:g}GbE" for bandwidth in bandwidths]
        lines.append("    " + format_series(f"{label:24s}", xs, values))
    lines.append(f"  mean per-node traffic (gigabits/iter) at {nodes} nodes:")
    for label in result.variant_labels:
        bandwidth = min(result.bandwidths)
        lines.append("    " + format_series(
            f"{label:24s}", [f"{bandwidth:g}GbE"],
            [result.traffic_gbits(label, bandwidth, nodes)],
            y_format="{:.3f}"))
    winner, loser, winner_tput, loser_tput, bandwidth = result.crossover(nodes)
    lines.append(
        f"  crossover at {bandwidth:g} GbE, {nodes} nodes: {winner} "
        f"({winner_tput:.1f} images/s) beats {loser} "
        f"({loser_tput:.1f} images/s), {winner_tput / loser_tput:.2f}x")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig_compression()))


if __name__ == "__main__":  # pragma: no cover
    main()
