"""Figure 6: TensorFlow-engine throughput scaling at 40 GbE.

Speedup vs. number of nodes for Inception-V3, VGG19 and VGG19-22K under
stock distributed TensorFlow, TF+WFBP (Poseidon's client library with dense
PS communication) and the full Poseidon, with single-node TensorFlow as the
baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engines import POSEIDON_TF, TF, TF_WFBP
from repro.engines.base import SystemConfig
from repro.experiments.fig5 import ScalingFigureResult
from repro.experiments.report import format_series, format_table
from repro.experiments.sweep import sweep_scaling_curves
from repro.nn.model_zoo import get_model_spec

#: Models of Figure 6, keyed by registry name.
FIG6_MODELS = ("inception-v3", "vgg19", "vgg19-22k")

#: Systems of Figure 6.
FIG6_SYSTEMS: Sequence[SystemConfig] = (TF, TF_WFBP, POSEIDON_TF)

#: Node counts on the x-axis.
FIG6_NODE_COUNTS = (1, 2, 4, 8, 16, 32)


def run_fig6(node_counts: Sequence[int] = FIG6_NODE_COUNTS,
             models: Sequence[str] = FIG6_MODELS,
             systems: Sequence[SystemConfig] = FIG6_SYSTEMS,
             bandwidth_gbps: float = 40.0,
             jobs: Optional[int] = None) -> ScalingFigureResult:
    """Simulate every Figure 6 series (one flat sweep over all configs)."""
    result = ScalingFigureResult(figure="fig6", bandwidth_gbps=bandwidth_gbps)
    specs = [get_model_spec(model_key) for model_key in models]
    combos = [(spec, system, bandwidth_gbps)
              for spec in specs for system in systems]
    curves = sweep_scaling_curves(combos, node_counts, jobs=jobs)
    for spec in specs:
        result.curves[spec.name] = {
            system.name: curves[(spec, system, bandwidth_gbps)]
            for system in systems
        }
    return result


def render(result: ScalingFigureResult) -> str:
    """Render one series per (model, system), plus a 32-node summary table."""
    lines = [
        f"Figure 6: TensorFlow-engine speedups at {result.bandwidth_gbps:g} GbE "
        f"(baseline: single-node TensorFlow)"
    ]
    summary_rows = []
    for model, systems in result.curves.items():
        for system, curve in systems.items():
            lines.append("  " + format_series(
                f"{model:12s} {system:14s}", curve.node_counts, curve.speedups))
            summary_rows.append((model, system, curve.final_speedup))
    lines.append("")
    lines.append(format_table(
        headers=["Model", "System", "Speedup @ max nodes"], rows=summary_rows))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig6()))


if __name__ == "__main__":  # pragma: no cover
    main()
