"""Figure 5: Caffe-engine throughput scaling at 40 GbE.

Speedup vs. number of nodes for GoogLeNet, VGG19 and VGG19-22K under
Caffe+PS (vanilla parameter server), Caffe+WFBP (Poseidon's client library
with HybComm disabled) and the full Poseidon, with single-node Caffe as the
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engines import CAFFE_PS, CAFFE_WFBP, POSEIDON_CAFFE
from repro.engines.base import SystemConfig
from repro.experiments.report import format_series, format_table
from repro.experiments.sweep import sweep_scaling_curves
from repro.nn.model_zoo import get_model_spec
from repro.simulation.speedup import ScalingCurve

#: Models of Figure 5, keyed by registry name.
FIG5_MODELS = ("googlenet", "vgg19", "vgg19-22k")

#: Systems of Figure 5.
FIG5_SYSTEMS: Sequence[SystemConfig] = (CAFFE_PS, CAFFE_WFBP, POSEIDON_CAFFE)

#: Node counts on the x-axis.
FIG5_NODE_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass
class ScalingFigureResult:
    """Scaling curves of one figure: model -> system -> curve."""

    figure: str
    bandwidth_gbps: float
    curves: Dict[str, Dict[str, ScalingCurve]] = field(default_factory=dict)

    def curve(self, model: str, system: str) -> ScalingCurve:
        """Curve for one (model, system) pair."""
        return self.curves[model][system]

    def speedup(self, model: str, system: str, nodes: int) -> float:
        """Speedup of one system at one cluster size."""
        return self.curve(model, system).speedup_at(nodes)


def run_fig5(node_counts: Sequence[int] = FIG5_NODE_COUNTS,
             models: Sequence[str] = FIG5_MODELS,
             systems: Sequence[SystemConfig] = FIG5_SYSTEMS,
             bandwidth_gbps: float = 40.0,
             jobs: Optional[int] = None) -> ScalingFigureResult:
    """Simulate every Figure 5 series (one flat sweep over all configs)."""
    result = ScalingFigureResult(figure="fig5", bandwidth_gbps=bandwidth_gbps)
    specs = [get_model_spec(model_key) for model_key in models]
    combos = [(spec, system, bandwidth_gbps)
              for spec in specs for system in systems]
    curves = sweep_scaling_curves(combos, node_counts, jobs=jobs)
    for spec in specs:
        result.curves[spec.name] = {
            system.name: curves[(spec, system, bandwidth_gbps)]
            for system in systems
        }
    return result


def render(result: ScalingFigureResult) -> str:
    """Render one series per (model, system), plus a 32-node summary table."""
    lines: List[str] = [
        f"Figure 5: Caffe-engine speedups at {result.bandwidth_gbps:g} GbE "
        f"(baseline: single-node Caffe)"
    ]
    summary_rows = []
    for model, systems in result.curves.items():
        for system, curve in systems.items():
            lines.append("  " + format_series(
                f"{model:12s} {system:18s}", curve.node_counts, curve.speedups))
            summary_rows.append(
                (model, system, curve.final_speedup,
                 f"{curve.scaling_efficiency() * 100:.0f}%"))
    lines.append("")
    lines.append(format_table(
        headers=["Model", "System", "Speedup @ max nodes", "Efficiency"],
        rows=summary_rows))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig5()))


if __name__ == "__main__":  # pragma: no cover
    main()
