"""Values reported in the paper, used for paper-vs-measured comparisons.

Numbers are read off the text and figures of the paper (figure values are
approximate, as they are plotted, not tabulated).  They are referenced by
the experiment renderers and by the reproduction-fidelity tests, which check
*shape* properties (orderings, approximate factors), never exact equality.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Table 3 -- parameter counts (millions) and per-GPU batch sizes.
TABLE3_MODELS: Dict[str, Tuple[float, int]] = {
    "CIFAR-10 quick": (0.1456, 100),
    "GoogLeNet": (5.0, 128),
    "Inception-V3": (27.0, 32),
    "VGG19": (143.0, 32),
    "VGG19-22K": (229.0, 32),
    "ResNet-152": (60.2, 32),
}

#: Section 5.1 -- single-node throughput (images/second).
SINGLE_NODE_IMAGES_PER_SEC: Dict[str, float] = {
    "GoogLeNet": 257.0,
    "VGG19": 35.5,
    "VGG19-22K": 34.6,
    "Inception-V3": 43.2,
}

#: Section 5.1 -- single-node throughput of the vanilla Caffe+PS baseline.
SINGLE_NODE_CAFFE_PS_IMAGES_PER_SEC: Dict[str, float] = {
    "GoogLeNet": 213.3,
    "VGG19": 21.3,
    "VGG19-22K": 18.5,
}

#: Figure 5 / Section 5.1 -- Caffe-engine speedups on 32 nodes at 40 GbE.
FIG5_SPEEDUPS_32_NODES: Dict[str, Dict[str, float]] = {
    "GoogLeNet": {"Caffe+WFBP": 31.0, "Poseidon (Caffe)": 31.5},
    "VGG19": {"Caffe+WFBP": 30.0, "Poseidon (Caffe)": 30.0},
    "VGG19-22K": {"Caffe+WFBP": 21.5, "Poseidon (Caffe)": 29.5},
}

#: Figure 6 / Section 5.1 -- TensorFlow-engine speedups on 32 nodes at 40 GbE.
FIG6_SPEEDUPS_32_NODES: Dict[str, Dict[str, float]] = {
    "Inception-V3": {"TF": 20.0, "TF+WFBP": 28.0, "Poseidon (TF)": 31.5},
    "VGG19": {"TF": 2.0, "TF+WFBP": 22.0, "Poseidon (TF)": 30.0},
    "VGG19-22K": {"TF": 1.0, "TF+WFBP": 22.0, "Poseidon (TF)": 30.0},
}

#: Section 5.2 -- VGG19 at 10 GbE on 16 nodes: PS-based ~8x, Poseidon ~linear.
FIG8_VGG19_10GBE_16_NODES: Dict[str, float] = {
    "Caffe+WFBP": 8.0,
    "Poseidon (Caffe)": 15.0,
}

#: Section 5.3 -- Adam's strategy reaches ~5x on 8 nodes for VGG19.
ADAM_VGG19_8_NODES_SPEEDUP: float = 5.0

#: Section 5.3 -- CNTK 1-bit speedups for VGG19 on 8/16/32 nodes.
CNTK_VGG19_SPEEDUPS: Dict[int, float] = {8: 5.8, 16: 11.0, 32: 20.0}

#: Figure 9 -- ResNet-152: 31x throughput speedup on 32 nodes; 0.24 top-1
#: error reached in under 90 epochs on 16 and 32 nodes.
RESNET152_SPEEDUP_32_NODES: float = 31.0
RESNET152_TARGET_ERROR: float = 0.24
RESNET152_EPOCH_BUDGET: int = 90

#: Table 1 worked example (Section 3.2): M=N=4096, K=32, P1=P2=8, in millions
#: of parameters transmitted+received.
TABLE1_EXAMPLE: Dict[str, float] = {
    "ps_worker_millions": 34.0,
    "ps_server_millions": 34.0,
    "ps_combined_millions": 58.7,
    "sfb_worker_millions": 3.7,
}

#: Section 5.1 -- multi-GPU: Poseidon linear on 4 local GPUs; 32x / 28x for
#: GoogLeNet / VGG19 on 4 x p2.8xlarge (32 K80 GPUs).
MULTIGPU_REFERENCE: Dict[str, float] = {
    "GoogLeNet@32gpus": 32.0,
    "VGG19@32gpus": 28.0,
}


def reported_speedup(figure: str, model: str, system: str) -> Optional[float]:
    """Look up a reported 32-node speedup for Figures 5/6 (None if absent)."""
    table = FIG5_SPEEDUPS_32_NODES if figure == "fig5" else FIG6_SPEEDUPS_32_NODES
    return table.get(model, {}).get(system)
