"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function returning a structured result
object and a ``render`` function producing the text table/series the paper
reports.  ``python -m repro.experiments.runner`` (or the installed
``poseidon-experiments`` script) regenerates everything and prints a
paper-vs-measured comparison.

Index (see DESIGN.md for the full mapping):

========  =======================================================
table1    Analytic communication cost of PS / SFB / Adam
table3    Model statistics
fig5      Caffe-engine throughput scaling at 40 GbE
fig6      TensorFlow-engine throughput scaling at 40 GbE
fig7      GPU computation vs. stall breakdown on 8 nodes
fig8      Throughput scaling under limited bandwidth
fig9      ResNet-152 throughput and statistical convergence
fig10     Per-node communication load (TF-WFBP / Adam / Poseidon)
fig11     CIFAR-10 quick: exact sync vs. 1-bit quantization
multigpu  Multi-GPU-per-node scaling (Section 5.1)
ablation  Design-choice ablations (KV pair size, WFBP, HybComm)
sweep     Parallel execution of a figure's independent configs
========  =======================================================
"""

from repro.experiments import (  # noqa: F401  (re-exported for discoverability)
    ablation,
    fidelity,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    multigpu,
    sweep,
    table1,
    table3,
)

__all__ = [
    "table1",
    "table3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "multigpu",
    "ablation",
    "fidelity",
    "sweep",
]
