"""Backend comparison: all registered communication schemes, one sweep.

The paper evaluates PS, SFB, HybComm, Adam and 1-bit; the pluggable backend
layer (:mod:`repro.comm.backend`) adds ring all-reduce and a hierarchical
parameter server.  This experiment puts all seven through the flow-level
simulator on identical clusters -- same engine, WFBP scheduling and
overlapped pulls; only the communication scheme differs -- across node
counts and bandwidths, answering the question Algorithm 1 raises: how far
is each fixed scheme from the per-layer hybrid choice, and how do the new
collectives compare on FC-heavy vs. conv-heavy models?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.backend import registered_backends
from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.experiments.report import format_series
from repro.experiments.sweep import sweep_scaling_curves
from repro.nn.model_zoo import get_model_spec
from repro.simulation.speedup import ScalingCurve

#: Display label of every compared scheme, keyed by CommMode.
SCHEME_LABELS: Tuple[Tuple[CommMode, str], ...] = (
    (CommMode.PS, "PS"),
    (CommMode.SFB_ONLY, "SFB"),
    (CommMode.HYBRID, "HybComm"),
    (CommMode.ONEBIT, "1-bit PS"),
    (CommMode.ADAM, "Adam"),
    (CommMode.RING, "Ring-AllReduce"),
    (CommMode.HIERPS, "Hierarchical-PS"),
)

#: Models swept: one FC-heavy (scheme choice matters) and one conv-heavy.
FIG_BACKENDS_MODELS: Tuple[str, ...] = ("vgg19", "googlenet")

#: Bandwidths swept (GbE): constrained and the paper's full testbed rate.
FIG_BACKENDS_BANDWIDTHS: Tuple[float, ...] = (10.0, 40.0)

#: Node counts on the x-axis.
FIG_BACKENDS_NODE_COUNTS: Tuple[int, ...] = (2, 4, 8, 16, 32)


def backend_systems() -> Tuple[SystemConfig, ...]:
    """One system per compared scheme, Poseidon client library throughout."""
    return tuple(
        SystemConfig(
            name=label,
            engine="poseidon",
            schedule=ScheduleMode.WFBP,
            partitioning=Partitioning.FINE,
            comm=comm,
            overlap_pull=True,
            overlap_host_copy=True,
        )
        for comm, label in SCHEME_LABELS
    )


@dataclass
class BackendSweepResult:
    """Curves keyed by model -> scheme label -> bandwidth."""

    node_counts: Sequence[int]
    bandwidths: Sequence[float]
    curves: Dict[str, Dict[str, Dict[float, ScalingCurve]]] = field(default_factory=dict)

    def curve(self, model: str, scheme: str, bandwidth_gbps: float) -> ScalingCurve:
        """Curve of one (model, scheme, bandwidth) combination."""
        return self.curves[model][scheme][bandwidth_gbps]

    def speedup(self, model: str, scheme: str, bandwidth_gbps: float,
                nodes: int) -> float:
        """Speedup at one point of the sweep."""
        return self.curve(model, scheme, bandwidth_gbps).speedup_at(nodes)

    @property
    def scheme_names(self) -> List[str]:
        """Compared scheme labels, in presentation order."""
        return [label for _, label in SCHEME_LABELS]


def run_fig_backends(node_counts: Sequence[int] = FIG_BACKENDS_NODE_COUNTS,
                     bandwidths: Sequence[float] = FIG_BACKENDS_BANDWIDTHS,
                     models: Sequence[str] = FIG_BACKENDS_MODELS,
                     jobs: Optional[int] = None) -> BackendSweepResult:
    """Simulate every (model, scheme, bandwidth, nodes) config in one sweep."""
    systems = backend_systems()
    specs = {model_key: get_model_spec(model_key) for model_key in models}
    combos = [(specs[model_key], system, float(bandwidth))
              for model_key in models
              for system in systems
              for bandwidth in bandwidths]
    curves = sweep_scaling_curves(combos, node_counts, jobs=jobs)
    result = BackendSweepResult(node_counts=tuple(node_counts),
                                bandwidths=tuple(bandwidths))
    for model_key in models:
        spec = specs[model_key]
        result.curves[spec.name] = {
            system.name: {
                bandwidth: curves[(spec, system, float(bandwidth))]
                for bandwidth in bandwidths
            }
            for system in systems
        }
    return result


def render(result: BackendSweepResult) -> str:
    """Render one series per (model, scheme, bandwidth)."""
    lines: List[str] = [
        "Backend comparison: every registered communication scheme "
        "(registry: " + ", ".join(sorted(registered_backends())) + ")"
    ]
    for model, schemes in result.curves.items():
        for scheme, by_bandwidth in schemes.items():
            for bandwidth, curve in sorted(by_bandwidth.items()):
                label = f"{model:12s} {scheme:16s} {bandwidth:4.0f} GbE"
                lines.append("  " + format_series(
                    label, curve.node_counts, curve.speedups))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig_backends()))


if __name__ == "__main__":  # pragma: no cover
    main()
