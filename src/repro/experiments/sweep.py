"""Sweep subsystem of the experiment harness.

The paper's figures are sweeps over independent configurations: Figure 5/6
vary (model, system, nodes), Figure 8 adds bandwidth, Figure 9 sweeps
systems, and the fidelity report re-runs Figures 5 and 6.  This module is
the experiments-facing API over the generic engine in :mod:`repro.sweep`:

* it re-exports :class:`~repro.sweep.SweepTask` / :func:`~repro.sweep.run_sweep`
  and the worker-count controls the runner's ``--jobs`` flag uses, and
* it provides :func:`sweep_scaling_curves`, the shared "enumerate every
  (model, system, bandwidth, nodes) combo, execute once, merge by config
  key" path underneath ``fig5``/``fig6``/``fig8``/``fig9``.

Because results are merged by config key (never by completion order), a
figure rendered from a parallel sweep is byte-identical to the sequential
one; ``tests/test_sweep.py`` pins that property.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engines.base import SystemConfig
from repro.nn.spec import ModelSpec
from repro.simulation.speedup import (
    ScalingCurve,
    curve_from_results,
    curve_tasks,
)
from repro.sweep import (  # noqa: F401  (re-exported: the subsystem's public API)
    SweepTask,
    default_jobs,
    resolve_jobs,
    run_sweep,
    set_default_jobs,
    use_jobs,
)

#: One figure series: (model spec, system, bandwidth in Gb/s).
Combo = Tuple[ModelSpec, SystemConfig, float]


def sweep_scaling_curves(combos: Sequence[Combo],
                         node_counts: Sequence[int],
                         jobs: Optional[int] = None,
                         engine: Optional[str] = None
                         ) -> Dict[Combo, ScalingCurve]:
    """Simulate every (combo, nodes) configuration in one flat sweep.

    Args:
        combos: the figure's series as (model, system, bandwidth) triples.
        node_counts: cluster sizes simulated for every combo.
        jobs: worker processes (``None`` defers to the module default).
        engine: simulation engine (``"des"``/``"fluid"``/``"auto"``;
            ``None`` defers to the session default).

    Returns:
        One :class:`ScalingCurve` per combo, keyed by the input triple and
        ordered like ``combos``.
    """
    tasks: List[SweepTask] = []
    for model, system, bandwidth in combos:
        tasks.extend(curve_tasks(model, system, node_counts,
                                 bandwidth_gbps=bandwidth, engine=engine))
    results = run_sweep(tasks, jobs=jobs)
    return {
        combo: curve_from_results(combo[0], combo[1], node_counts, combo[2],
                                  results)
        for combo in combos
    }


__all__ = [
    "Combo",
    "SweepTask",
    "default_jobs",
    "resolve_jobs",
    "run_sweep",
    "set_default_jobs",
    "sweep_scaling_curves",
    "use_jobs",
]
