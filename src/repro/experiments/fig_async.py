"""Beyond-BSP frontier: throughput vs. staleness per communication backend.

The paper trains under BSP throughout; this experiment maps what the
execution-semantics axis buys on top of it.  For every backend it sweeps the
synchronization policy -- BSP, SSP at increasing staleness bounds, fully
asynchronous, and local SGD at increasing sync periods -- across bandwidths
and node counts, reusing the :mod:`repro.sweep` parallel runner.  Two
structural facts should be visible in any engine (DES or fluid):

- throughput is monotone along the staleness axis (a weaker consistency
  gate can only shorten the critical path), saturating once communication
  hides entirely under compute;
- local SGD's per-iteration wire volume scales as ``1/H`` with the sync
  period, since the substrate only carries traffic every H-th step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policy import SyncPolicy
from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.experiments.report import format_series
from repro.experiments.sweep import sweep_scaling_curves
from repro.nn.model_zoo import get_model_spec
from repro.simulation.speedup import ScalingCurve

#: Policies swept, in frontier order: the staleness axis (BSP = s 0 up to
#: fully async), then the local-SGD period axis.
FIG_ASYNC_POLICIES: Tuple[str, ...] = (
    "bsp", "ssp-1", "ssp-2", "ssp-4", "async",
    "local-2", "local-4", "local-8",
)

#: Backends compared.  The default set covers the three substrate families
#: (sharded PS, quantized PS, server-free collective); any registered
#: backend name can be passed instead.
FIG_ASYNC_SCHEMES: Tuple[Tuple[CommMode, str], ...] = (
    (CommMode.PS, "PS"),
    (CommMode.ONEBIT, "1-bit PS"),
    (CommMode.RING, "Ring-AllReduce"),
)

#: Bandwidths swept (GbE): a constrained link where relaxed consistency
#: pays, and a comfortable one where everything saturates.
FIG_ASYNC_BANDWIDTHS: Tuple[float, ...] = (1.0, 10.0)

#: Node counts on the x-axis.
FIG_ASYNC_NODE_COUNTS: Tuple[int, ...] = (8, 16)

#: Model swept: FC-heavy, so the policy choice actually moves bytes.
FIG_ASYNC_MODEL = "vgg19"

#: Staleness axis labels (prefix of FIG_ASYNC_POLICIES) used for the
#: monotone-frontier view; the local-SGD entries form the 1/H traffic view.
_STALENESS_AXIS: Tuple[str, ...] = ("bsp", "ssp-1", "ssp-2", "ssp-4", "async")


def policy_systems(schemes: Sequence[Tuple[CommMode, str]] = FIG_ASYNC_SCHEMES,
                   policies: Sequence[str] = FIG_ASYNC_POLICIES
                   ) -> Tuple[SystemConfig, ...]:
    """One system per (backend, policy) pair, Poseidon client throughout.

    System names are unique per pair (``"PS ssp(2)"``) because the sweep
    layer keys results by system name.
    """
    systems: List[SystemConfig] = []
    for comm, label in schemes:
        for spec in policies:
            policy = SyncPolicy.parse(spec)
            systems.append(SystemConfig(
                name=f"{label} {policy}",
                engine="poseidon",
                schedule=ScheduleMode.WFBP,
                partitioning=Partitioning.FINE,
                comm=comm,
                overlap_pull=True,
                overlap_host_copy=True,
            ).with_policy(policy))
    return tuple(systems)


@dataclass
class AsyncSweepResult:
    """Curves keyed by scheme label -> policy spec -> bandwidth."""

    node_counts: Sequence[int]
    bandwidths: Sequence[float]
    policies: Sequence[str]
    curves: Dict[str, Dict[str, Dict[float, ScalingCurve]]] = field(
        default_factory=dict)

    def curve(self, scheme: str, policy: str,
              bandwidth_gbps: float) -> ScalingCurve:
        """Curve of one (scheme, policy, bandwidth) combination."""
        return self.curves[scheme][policy][bandwidth_gbps]

    def throughput(self, scheme: str, policy: str, bandwidth_gbps: float,
                   nodes: int) -> float:
        """Images/s at one sweep point."""
        curve = self.curve(scheme, policy, bandwidth_gbps)
        result = curve.results[curve.node_counts.index(nodes)]
        return result.throughput_images_per_sec

    def traffic_gbits(self, scheme: str, policy: str, bandwidth_gbps: float,
                      nodes: int) -> float:
        """Mean per-node traffic (gigabits/iteration) at one sweep point."""
        curve = self.curve(scheme, policy, bandwidth_gbps)
        result = curve.results[curve.node_counts.index(nodes)]
        return result.mean_traffic_gbits

    def staleness_frontier(self, scheme: str, bandwidth_gbps: float,
                           nodes: int) -> List[Tuple[str, float]]:
        """Throughput along the staleness axis (bsp, ssp..., async)."""
        axis = [spec for spec in _STALENESS_AXIS if spec in self.policies]
        return [(spec, self.throughput(scheme, spec, bandwidth_gbps, nodes))
                for spec in axis]

    @property
    def scheme_names(self) -> List[str]:
        """Compared scheme labels, in presentation order."""
        return list(self.curves)


def run_fig_async(node_counts: Sequence[int] = FIG_ASYNC_NODE_COUNTS,
                  bandwidths: Sequence[float] = FIG_ASYNC_BANDWIDTHS,
                  schemes: Sequence[Tuple[CommMode, str]] = FIG_ASYNC_SCHEMES,
                  policies: Sequence[str] = FIG_ASYNC_POLICIES,
                  model: str = FIG_ASYNC_MODEL,
                  jobs: Optional[int] = None) -> AsyncSweepResult:
    """Simulate every (backend, policy, bandwidth, nodes) config in one sweep."""
    spec = get_model_spec(model)
    systems = policy_systems(schemes, policies)
    combos = [(spec, system, float(bandwidth))
              for system in systems
              for bandwidth in bandwidths]
    curves = sweep_scaling_curves(combos, node_counts, jobs=jobs)
    result = AsyncSweepResult(node_counts=tuple(node_counts),
                              bandwidths=tuple(bandwidths),
                              policies=tuple(policies))
    for comm, label in schemes:
        by_policy: Dict[str, Dict[float, ScalingCurve]] = {}
        for policy_spec in policies:
            name = f"{label} {SyncPolicy.parse(policy_spec)}"
            system = next(s for s in systems if s.name == name)
            by_policy[policy_spec] = {
                bandwidth: curves[(spec, system, float(bandwidth))]
                for bandwidth in bandwidths
            }
        result.curves[label] = by_policy
    return result


def render(result: AsyncSweepResult) -> str:
    """Frontier and traffic views, one series per (scheme, bandwidth)."""
    lines: List[str] = [
        "Beyond-BSP frontier: throughput vs. staleness and sync period"
    ]
    nodes = max(result.node_counts)
    lines.append(f"  throughput (images/s) at {nodes} nodes, by policy:")
    for scheme in result.scheme_names:
        for bandwidth in result.bandwidths:
            specs = list(result.policies)
            values = [result.throughput(scheme, spec, bandwidth, nodes)
                      for spec in specs]
            label = f"{scheme:16s} {bandwidth:4.0f} GbE"
            lines.append("    " + format_series(label, specs, values))
    lines.append(f"  mean per-node traffic (gigabits/iter) at {nodes} nodes:")
    for scheme in result.scheme_names:
        bandwidth = result.bandwidths[0]
        specs = list(result.policies)
        values = [result.traffic_gbits(scheme, spec, bandwidth, nodes)
                  for spec in specs]
        lines.append("    " + format_series(f"{scheme:16s}", specs, values,
                                            y_format="{:.3f}"))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig_async()))


if __name__ == "__main__":  # pragma: no cover
    main()
