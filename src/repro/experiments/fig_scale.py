"""Scale extrapolation: all seven backends at 1k-10k nodes (fluid engine).

The paper's testbed tops out at 32 nodes; this experiment asks how the
Algorithm-1 backends *would* rank on clusters three orders of magnitude
larger -- flat and rack-oversubscribed, alone and with other jobs
contending for the same rack uplinks.  The event-driven simulator cannot
walk clusters of this size interactively, so every point is evaluated by
the closed-form fluid engine (:mod:`repro.simulation.fluid`); the
``engine="auto"`` switchover means these are exactly the sizes where the
fluid tiers are authoritative.

Single-job and multi-job speedups share one sweep: the multi-job column
re-evaluates each point with ``background_jobs`` additional identical jobs
whose cross-rack traffic fluid-shares the rack uplink aggregate
(``node_bw * members / oversubscription``), stretching every rack-wire
busy interval by the job count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import ClusterConfig
from repro.experiments.fig_backends import backend_systems
from repro.logging_util import get_logger
from repro.nn.model_zoo import get_model_spec
from repro.simulation.fluid import simulate_fluid
from repro.simulation.workload import build_workload

LOGGER = get_logger(__name__)

#: Cluster sizes, far past the DES's interactive range.
FIG_SCALE_NODE_COUNTS: Tuple[int, ...] = (1000, 4000, 10000)

#: Rack oversubscription factors: non-blocking vs. the common 4:1.
FIG_SCALE_OVERSUBSCRIPTION: Tuple[float, ...] = (1.0, 4.0)

#: Nodes per rack at scale (a typical dense-GPU rack row).
FIG_SCALE_RACK_SIZE: int = 40

#: Additional identical jobs in the multi-job column.
FIG_SCALE_BACKGROUND_JOBS: int = 1

FIG_SCALE_MODEL: str = "vgg19"
FIG_SCALE_BANDWIDTH_GBPS: float = 40.0


@dataclass
class ScalePoint:
    """One (scheme, nodes, oversubscription) evaluation."""

    scheme: str
    nodes: int
    oversubscription: float
    speedup: float
    multi_job_speedup: float
    iteration_seconds: float


@dataclass
class ScaleSweepResult:
    """All points of the scale sweep, in evaluation order."""

    model_name: str
    bandwidth_gbps: float
    background_jobs: int
    points: List[ScalePoint] = field(default_factory=list)

    def point(self, scheme: str, nodes: int,
              oversubscription: float) -> ScalePoint:
        """Look up one evaluated point.

        Raises:
            KeyError: if that configuration was not part of the sweep.
        """
        for point in self.points:
            if (point.scheme == scheme and point.nodes == nodes
                    and point.oversubscription == oversubscription):
                return point
        raise KeyError((scheme, nodes, oversubscription))


def _cluster(nodes: int, oversubscription: float,
             bandwidth_gbps: float) -> ClusterConfig:
    if oversubscription == 1.0:
        return ClusterConfig(num_workers=nodes, bandwidth_gbps=bandwidth_gbps)
    return ClusterConfig(num_workers=nodes, bandwidth_gbps=bandwidth_gbps,
                         racks=max(2, nodes // FIG_SCALE_RACK_SIZE),
                         oversubscription=oversubscription)


def run_fig_scale(node_counts: Sequence[int] = FIG_SCALE_NODE_COUNTS,
                  oversubscription: Sequence[float] = FIG_SCALE_OVERSUBSCRIPTION,
                  model: str = FIG_SCALE_MODEL,
                  bandwidth_gbps: float = FIG_SCALE_BANDWIDTH_GBPS,
                  background_jobs: int = FIG_SCALE_BACKGROUND_JOBS,
                  jobs: Optional[int] = None) -> ScaleSweepResult:
    """Evaluate every (scheme, nodes, oversub) point with the fluid engine.

    ``jobs`` is accepted for interface symmetry with the other experiments
    but unused: the whole sweep is closed-form arithmetic and finishes in
    well under a second, so process workers would only add overhead.
    """
    spec = get_model_spec(model)
    result = ScaleSweepResult(model_name=spec.name,
                              bandwidth_gbps=bandwidth_gbps,
                              background_jobs=background_jobs)
    start = time.time()
    for system in backend_systems():
        for nodes in node_counts:
            for oversub in oversubscription:
                cluster = _cluster(nodes, oversub, bandwidth_gbps)
                workload = build_workload(spec, gpu=cluster.gpu)
                alone = simulate_fluid(spec, system, cluster,
                                       workload=workload)
                shared = simulate_fluid(spec, system, cluster,
                                        workload=workload,
                                        background_jobs=background_jobs)
                result.points.append(ScalePoint(
                    scheme=system.name,
                    nodes=nodes,
                    oversubscription=oversub,
                    speedup=alone.speedup,
                    multi_job_speedup=shared.speedup,
                    iteration_seconds=alone.iteration_seconds,
                ))
    LOGGER.info("fig_scale: %d fluid points in %.2fs",
                len(result.points), time.time() - start)
    return result


def render(result: ScaleSweepResult) -> str:
    """Render the sweep as one block per scheme."""
    extra = result.background_jobs + 1
    lines: List[str] = [
        f"Scale extrapolation (fluid engine): {result.model_name}, "
        f"{result.bandwidth_gbps:.0f} GbE, "
        f"multi-job = {extra} jobs sharing rack uplinks",
    ]
    by_scheme: Dict[str, List[ScalePoint]] = {}
    for point in result.points:
        by_scheme.setdefault(point.scheme, []).append(point)
    for scheme, points in by_scheme.items():
        lines.append(f"  {scheme}:")
        for point in points:
            lines.append(
                f"    n={point.nodes:6d} oversub={point.oversubscription:3.0f}"
                f"  speedup={point.speedup:9.1f}x"
                f"  multi-job={point.multi_job_speedup:9.1f}x"
                f"  iter={point.iteration_seconds * 1e3:9.2f} ms")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run_fig_scale()))


if __name__ == "__main__":  # pragma: no cover
    main()
