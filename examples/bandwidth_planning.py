#!/usr/bin/env python
"""Bandwidth planning: how much Ethernet does a model need to scale?

The question practitioners ask before renting a cluster: given a model and a
target cluster size, which interconnect keeps the GPUs busy?  This example
sweeps bandwidth for VGG19 and VGG19-22K (the paper's Figure 8 setting) and
prints, for every bandwidth, the speedup with and without Poseidon's hybrid
communication -- showing where a plain parameter server falls off a cliff and
Poseidon keeps scaling.

Run::

    python examples/bandwidth_planning.py [--nodes 16]
"""

import argparse

from repro.config import ClusterConfig
from repro.engines import CAFFE_WFBP, POSEIDON_CAFFE
from repro.nn.model_zoo import get_model_spec
from repro.simulation import simulate_system


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--models", nargs="*", default=["vgg19", "vgg19-22k"])
    parser.add_argument("--bandwidths", nargs="*", type=float,
                        default=[5.0, 10.0, 20.0, 30.0, 40.0])
    args = parser.parse_args()

    for model_key in args.models:
        model = get_model_spec(model_key)
        print(f"\n{model.name}: {model.total_params / 1e6:.0f}M parameters, "
              f"{model.fc_param_fraction * 100:.0f}% in FC layers, "
              f"{args.nodes} nodes")
        print(f"  {'GbE':>5s}  {'PS only':>8s}  {'Poseidon':>8s}  {'gain':>6s}")
        for bandwidth in args.bandwidths:
            cluster = ClusterConfig(num_workers=args.nodes, bandwidth_gbps=bandwidth)
            ps_only = simulate_system(model, CAFFE_WFBP, cluster).speedup
            poseidon = simulate_system(model, POSEIDON_CAFFE, cluster).speedup
            gain = poseidon / ps_only if ps_only else float("inf")
            print(f"  {bandwidth:5.0f}  {ps_only:8.1f}  {poseidon:8.1f}  {gain:5.2f}x")
        print("  (speedup over a single node; 'PS only' = WFBP with dense PS traffic)")


if __name__ == "__main__":
    main()
