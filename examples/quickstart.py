#!/usr/bin/env python
"""Quickstart: plan and simulate Poseidon for one model on one cluster.

This walks the three layers of the public API:

1. Pick a model from the zoo (VGG19 here) and describe the cluster.
2. Build a :class:`PoseidonContext` -- the coordinator decides, per layer,
   whether to synchronize through the sharded parameter server or through
   sufficient-factor broadcasting (Algorithm 1 / HybComm).
3. Simulate one training iteration of three systems (vanilla PS, WFBP-only,
   full Poseidon) and print the resulting throughput speedups.

Run::

    python examples/quickstart.py
"""

from repro import ClusterConfig, PoseidonContext, TrainingConfig
from repro.engines import CAFFE_PS, CAFFE_WFBP, POSEIDON_CAFFE
from repro.nn.model_zoo import get_model_spec
from repro.simulation import simulate_system


def main() -> None:
    model = get_model_spec("vgg19")
    cluster = ClusterConfig(num_workers=16, bandwidth_gbps=10.0)
    training = TrainingConfig(batch_size=32)

    # --- 1. planning: what does Poseidon decide to do? -----------------------
    context = PoseidonContext(model, cluster, training)
    print(context.describe())
    print()
    print("Per-layer decisions for the three FC layers:")
    for layer_name in ("fc6", "fc7", "fc8"):
        print(f"  {layer_name}: {context.best_scheme(layer_name).value.upper()}")
    print()

    # --- 2. simulation: what does that buy in throughput? --------------------
    print(f"Simulated speedup on {cluster.num_workers} nodes "
          f"at {cluster.bandwidth_gbps:g} GbE (baseline: single-node Caffe):")
    for system in (CAFFE_PS, CAFFE_WFBP, POSEIDON_CAFFE):
        result = simulate_system(model, system, cluster)
        print(f"  {system.name:18s} speedup {result.speedup:5.1f}x   "
              f"GPU busy {result.gpu_busy_fraction * 100:5.1f}%   "
              f"traffic {result.mean_traffic_gbits:5.1f} Gb/node/iter")


if __name__ == "__main__":
    main()
