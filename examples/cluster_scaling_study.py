#!/usr/bin/env python
"""Cluster scaling study: reproduce the headline Figure 5/6 curves.

Sweeps cluster size for a chosen model and prints the speedup of every
system the paper evaluates on that engine, plus the per-node traffic and GPU
stall fraction at the largest size -- the three quantities Figures 5-7 and 10
report.

Run::

    python examples/cluster_scaling_study.py --model vgg19-22k --engine tensorflow
"""

import argparse

from repro.config import ClusterConfig
from repro.engines import caffe_systems, tensorflow_systems
from repro.nn.model_zoo import get_model_spec
from repro.simulation import simulate_system
from repro.simulation.speedup import scaling_curve


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="vgg19-22k")
    parser.add_argument("--engine", choices=("caffe", "tensorflow"),
                        default="tensorflow")
    parser.add_argument("--bandwidth", type=float, default=40.0)
    parser.add_argument("--nodes", nargs="*", type=int, default=[1, 2, 4, 8, 16, 32])
    args = parser.parse_args()

    model = get_model_spec(args.model)
    systems = caffe_systems() if args.engine == "caffe" else tensorflow_systems()

    print(f"{model.name} on up to {max(args.nodes)} nodes at "
          f"{args.bandwidth:g} GbE ({args.engine} engine)\n")
    print("Speedup vs. single node:")
    for name, system in systems.items():
        curve = scaling_curve(model, system, node_counts=args.nodes,
                              bandwidth_gbps=args.bandwidth)
        series = "  ".join(f"{n}:{s:5.1f}" for n, s in
                           zip(curve.node_counts, curve.speedups))
        print(f"  {name:16s} {series}")

    largest = max(args.nodes)
    cluster = ClusterConfig(num_workers=largest, bandwidth_gbps=args.bandwidth)
    print(f"\nAt {largest} nodes:")
    for name, system in systems.items():
        result = simulate_system(model, system, cluster)
        print(f"  {name:16s} traffic {result.mean_traffic_gbits:6.1f} Gb/node/iter   "
              f"GPU stall {result.gpu_stall_fraction * 100:5.1f}%")


if __name__ == "__main__":
    main()
