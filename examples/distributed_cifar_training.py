#!/usr/bin/env python
"""Functional distributed training: CIFAR-quick on emulated workers.

This is the Figure 11 workload: the (downscaled) CIFAR-10 quick CNN trained
with real numpy SGD on several emulated GPU workers, with per-layer syncers,
wait-free backpropagation and BSP barriers.  Three synchronization modes are
compared on identical data:

* ``hybrid``  -- Poseidon: PS for convolutions, SFB where it is cheaper.
* ``ps``      -- dense gradients through the parameter server only.
* ``onebit``  -- 1-bit quantized gradients with error feedback (the CNTK
  baseline), which transmits far fewer bytes but converges worse.

Run::

    python examples/distributed_cifar_training.py [--iterations 150]
"""

import argparse

from repro.config import TrainingConfig
from repro.data import make_cifar10_like, shard_dataset
from repro.nn.model_zoo import build_cifar_quick_small_network
from repro.parallel import DistributedTrainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=150)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--image-size", type=int, default=12)
    args = parser.parse_args()

    dataset = make_cifar10_like(num_train=800, num_test=200,
                                image_size=args.image_size, noise_scale=2.0, seed=0)
    shards = shard_dataset(dataset.train_images, dataset.train_labels,
                           args.workers, seed=0)
    training = TrainingConfig(batch_size=args.batch_size, learning_rate=0.1,
                              iterations=args.iterations, seed=0)

    print(f"Training CIFAR-quick on {args.workers} emulated workers, "
          f"{args.iterations} iterations, batch {args.batch_size}/worker\n")
    header = f"{'mode':8s} {'final loss':>10s} {'test error':>10s} {'MB moved':>10s}"
    print(header)
    print("-" * len(header))
    for mode in ("hybrid", "ps", "onebit"):
        trainer = DistributedTrainer(
            network_factory=lambda: build_cifar_quick_small_network(
                seed=0, image_size=args.image_size),
            num_workers=args.workers,
            train_shards=shards,
            training=training,
            mode=mode,
            test_data=(dataset.test_images, dataset.test_labels),
            eval_every=max(10, args.iterations // 3),
        )
        history = trainer.train(args.iterations)
        print(f"{mode:8s} {history.final_loss:10.4f} "
              f"{history.final_test_error:10.3f} "
              f"{history.total_bytes / 1e6:10.1f}")
    print("\nExact modes (hybrid/ps) agree; the 1-bit mode moves the fewest "
          "bytes but pays for it in convergence (the paper's Figure 11).")


if __name__ == "__main__":
    main()
